//! Backtrackable solver state: domains and the trail.
//!
//! Start times use bounds domains (`[lb, ub]`), resource assignments use a
//! 128-bit candidate bitmask, and per-job lateness indicators are three-
//! valued (`Unknown` / `OnTime` / `Late`). Every narrowing is recorded on a
//! trail so the search can restore state on backtracking in O(changes).

use crate::model::{JobRef, Model, ResRef, TaskRef};

/// Domain wipe-out (or any constraint violation detected by a propagator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict;

/// Three-valued lateness status of a job (the paper's `N_j` before/after it
/// is decided).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lateness {
    /// Not yet decided.
    Unknown,
    /// `N_j = 0`: the job's deadline becomes a hard bound on its tasks.
    OnTime,
    /// `N_j = 1`: the job misses its deadline.
    Late,
}

#[derive(Debug, Clone, Copy)]
enum TrailEntry {
    StartLb(u32, i64),
    StartUb(u32, i64),
    Mask(u32, u128),
    Late(u32, Lateness),
    AppliedCut(u32),
}

/// The backtrackable domain store.
#[derive(Debug)]
pub struct Domains {
    start_lb: Vec<i64>,
    start_ub: Vec<i64>,
    mask: Vec<u128>,
    late: Vec<Lateness>,
    trail: Vec<TrailEntry>,
    levels: Vec<usize>,
    /// Tasks whose domain changed since the engine last drained; drives the
    /// propagation worklist.
    dirty_tasks: Vec<TaskRef>,
    /// Jobs whose lateness changed since the engine last drained.
    dirty_jobs: Vec<JobRef>,
    /// Incremented on every [`pop_level`](Self::pop_level); lets stateful
    /// propagators (the incremental timetable) detect that the search
    /// jumped to a different path and their cached view is stale.
    generation: u64,
    /// Per-task monotone change stamp: bumped on every narrowing of the
    /// task's start bounds or resource mask. A stateful propagator records
    /// the stamps it has seen and refreshes only tasks whose stamp moved.
    stamp: Vec<u64>,
    /// Global stamp counter backing [`stamp`](Self::stamp).
    next_stamp: u64,
    /// The tightest objective cut already propagated on the current path
    /// (trailed; `u32::MAX` = never). Maintained by the objective
    /// propagator so the engine re-enqueues it only when the cut actually
    /// tightened relative to this path.
    applied_cut: u32,
}

impl Domains {
    /// Root domains for `model`: unpinned tasks get `[release, horizon]`
    /// starts and their capacity-feasible resource set; pinned tasks get
    /// singleton start and resource.
    pub fn new(model: &Model) -> Self {
        let n = model.n_tasks();
        let mut start_lb = Vec::with_capacity(n);
        let mut start_ub = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        for i in 0..n {
            let t = TaskRef(i as u32);
            let release = model.task_release(t);
            start_lb.push(release);
            let ub = match model.tasks[i].fixed {
                Some((_, s)) => s,
                None => model.horizon.max(release),
            };
            start_ub.push(ub);
            mask.push(model.candidate_mask(t));
        }
        Domains {
            start_lb,
            start_ub,
            mask,
            late: vec![Lateness::Unknown; model.n_jobs()],
            trail: Vec::new(),
            levels: Vec::new(),
            dirty_tasks: Vec::new(),
            dirty_jobs: Vec::new(),
            generation: 0,
            stamp: vec![0; n],
            next_stamp: 0,
            applied_cut: u32::MAX,
        }
    }

    // ---- getters -------------------------------------------------------

    /// Current start lower bound of `t`.
    #[inline]
    pub fn lb(&self, t: TaskRef) -> i64 {
        self.start_lb[t.idx()]
    }

    /// Current start upper bound of `t`.
    #[inline]
    pub fn ub(&self, t: TaskRef) -> i64 {
        self.start_ub[t.idx()]
    }

    /// True when the start of `t` is fixed.
    #[inline]
    pub fn start_fixed(&self, t: TaskRef) -> bool {
        self.start_lb[t.idx()] == self.start_ub[t.idx()]
    }

    /// Candidate resource mask of `t`.
    #[inline]
    pub fn mask(&self, t: TaskRef) -> u128 {
        self.mask[t.idx()]
    }

    /// The assigned resource, if the candidate set is a singleton.
    #[inline]
    pub fn assigned(&self, t: TaskRef) -> Option<ResRef> {
        let m = self.mask[t.idx()];
        if m != 0 && m & (m - 1) == 0 {
            Some(ResRef(m.trailing_zeros()))
        } else {
            None
        }
    }

    /// True when `r` is still a candidate for `t`.
    #[inline]
    pub fn has_res(&self, t: TaskRef, r: ResRef) -> bool {
        self.mask[t.idx()] & (1u128 << r.idx()) != 0
    }

    /// Lateness status of `j`.
    #[inline]
    pub fn late(&self, j: JobRef) -> Lateness {
        self.late[j.idx()]
    }

    /// True when every task has a fixed start and a single resource.
    pub fn all_fixed(&self) -> bool {
        (0..self.start_lb.len()).all(|i| {
            let t = TaskRef(i as u32);
            self.start_fixed(t) && self.assigned(t).is_some()
        })
    }

    /// Number of jobs currently marked late.
    pub fn late_count(&self) -> u32 {
        self.late.iter().filter(|&&l| l == Lateness::Late).count() as u32
    }

    /// Backtrack generation: changes exactly when [`pop_level`](Self::pop_level)
    /// runs. Stateful propagators compare it against the generation they
    /// cached under; a mismatch means the search moved to another path and
    /// incrementally-maintained state must be rebuilt from scratch.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Monotone change stamp of `t`: moves on every narrowing of its start
    /// bounds or resource mask (never reverts on backtracking — a stale
    /// stamp only means "maybe changed", which pairs with
    /// [`generation`](Self::generation) for correctness).
    #[inline]
    pub fn task_stamp(&self, t: TaskRef) -> u64 {
        self.stamp[t.idx()]
    }

    #[inline]
    fn touch(&mut self, t: TaskRef) {
        self.next_stamp += 1;
        self.stamp[t.idx()] = self.next_stamp;
        self.dirty_tasks.push(t);
    }

    /// The tightest objective cut already propagated on the current path
    /// (`u32::MAX` = none). Trailed: backtracking reverts it, so a cut
    /// tightened deeper in the tree is correctly re-applied on sibling
    /// branches.
    #[inline]
    pub fn applied_cut(&self) -> u32 {
        self.applied_cut
    }

    /// Record that the objective cut `bound` has been propagated on the
    /// current path (trailed; monotone per path — attempts to loosen are
    /// ignored).
    pub fn note_applied_cut(&mut self, bound: u32) {
        if bound < self.applied_cut {
            self.trail.push(TrailEntry::AppliedCut(self.applied_cut));
            self.applied_cut = bound;
        }
    }

    // ---- trailed updates -----------------------------------------------

    /// Raise the start lower bound of `t` to `v`. Returns whether the domain
    /// changed; fails on wipe-out.
    pub fn set_lb(&mut self, t: TaskRef, v: i64) -> Result<bool, Conflict> {
        let i = t.idx();
        if v <= self.start_lb[i] {
            return Ok(false);
        }
        if v > self.start_ub[i] {
            return Err(Conflict);
        }
        self.trail.push(TrailEntry::StartLb(t.0, self.start_lb[i]));
        self.start_lb[i] = v;
        self.touch(t);
        Ok(true)
    }

    /// Lower the start upper bound of `t` to `v`.
    pub fn set_ub(&mut self, t: TaskRef, v: i64) -> Result<bool, Conflict> {
        let i = t.idx();
        if v >= self.start_ub[i] {
            return Ok(false);
        }
        if v < self.start_lb[i] {
            return Err(Conflict);
        }
        self.trail.push(TrailEntry::StartUb(t.0, self.start_ub[i]));
        self.start_ub[i] = v;
        self.touch(t);
        Ok(true)
    }

    /// Fix the start of `t` to `v`.
    pub fn fix_start(&mut self, t: TaskRef, v: i64) -> Result<bool, Conflict> {
        let a = self.set_lb(t, v)?;
        let b = self.set_ub(t, v)?;
        Ok(a || b)
    }

    /// Remove resource `r` from `t`'s candidates.
    pub fn remove_res(&mut self, t: TaskRef, r: ResRef) -> Result<bool, Conflict> {
        let i = t.idx();
        let bit = 1u128 << r.idx();
        if self.mask[i] & bit == 0 {
            return Ok(false);
        }
        let new = self.mask[i] & !bit;
        if new == 0 {
            return Err(Conflict);
        }
        self.trail.push(TrailEntry::Mask(t.0, self.mask[i]));
        self.mask[i] = new;
        self.touch(t);
        Ok(true)
    }

    /// Assign `t` to exactly `r`.
    pub fn assign_res(&mut self, t: TaskRef, r: ResRef) -> Result<bool, Conflict> {
        let i = t.idx();
        let bit = 1u128 << r.idx();
        if self.mask[i] & bit == 0 {
            return Err(Conflict);
        }
        if self.mask[i] == bit {
            return Ok(false);
        }
        self.trail.push(TrailEntry::Mask(t.0, self.mask[i]));
        self.mask[i] = bit;
        self.touch(t);
        Ok(true)
    }

    /// Decide the lateness of `j`. Contradicting an earlier decision fails.
    pub fn set_late(&mut self, j: JobRef, v: Lateness) -> Result<bool, Conflict> {
        assert!(v != Lateness::Unknown, "cannot un-decide lateness");
        let i = j.idx();
        match self.late[i] {
            Lateness::Unknown => {
                self.trail.push(TrailEntry::Late(j.0, Lateness::Unknown));
                self.late[i] = v;
                self.dirty_jobs.push(j);
                Ok(true)
            }
            cur if cur == v => Ok(false),
            _ => Err(Conflict),
        }
    }

    // ---- search bookkeeping ---------------------------------------------

    /// Open a new decision level.
    pub fn push_level(&mut self) {
        self.levels.push(self.trail.len());
    }

    /// Undo everything since the matching [`push_level`](Self::push_level).
    pub fn pop_level(&mut self) {
        let mark = self.levels.pop().expect("pop_level without push_level");
        while self.trail.len() > mark {
            match self.trail.pop().unwrap() {
                TrailEntry::StartLb(t, v) => self.start_lb[t as usize] = v,
                TrailEntry::StartUb(t, v) => self.start_ub[t as usize] = v,
                TrailEntry::Mask(t, v) => self.mask[t as usize] = v,
                TrailEntry::Late(j, v) => self.late[j as usize] = v,
                TrailEntry::AppliedCut(v) => self.applied_cut = v,
            }
        }
        self.generation += 1;
        // Dirty queues are only meaningful within a propagation round; a
        // backtrack invalidates them wholesale.
        self.dirty_tasks.clear();
        self.dirty_jobs.clear();
    }

    /// Current decision depth.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Drain the tasks dirtied since the last drain.
    ///
    /// Allocates fresh queues; the search hot path uses
    /// [`drain_dirty_into`](Self::drain_dirty_into) instead, which reuses
    /// caller-owned buffers.
    pub fn drain_dirty(&mut self) -> (Vec<TaskRef>, Vec<JobRef>) {
        (
            std::mem::take(&mut self.dirty_tasks),
            std::mem::take(&mut self.dirty_jobs),
        )
    }

    /// Drain the dirty queues into caller-owned buffers (cleared first).
    /// Both the internal queues and the output buffers keep their
    /// capacity, so steady-state propagation performs no allocation.
    pub fn drain_dirty_into(&mut self, tasks: &mut Vec<TaskRef>, jobs: &mut Vec<JobRef>) {
        tasks.clear();
        jobs.clear();
        tasks.append(&mut self.dirty_tasks);
        jobs.append(&mut self.dirty_jobs);
    }

    /// Discard pending dirty entries in place, keeping queue capacity.
    pub fn clear_dirty(&mut self) {
        self.dirty_tasks.clear();
        self.dirty_jobs.clear();
    }

    /// True when nothing is pending in the dirty queues.
    pub fn dirty_is_empty(&self) -> bool {
        self.dirty_tasks.is_empty() && self.dirty_jobs.is_empty()
    }
}

/// Per-task failure counters for conflict-guided branching (weighted degree
/// with exponential decay, VSIDS-style).
///
/// Every conflict bumps the weight of the task whose decision failed by a
/// geometrically growing increment; dividing the increment by the decay
/// factor after each bump makes *recent* conflicts dominate without ever
/// touching the other counters (the classic EVSIDS trick). Weights are
/// deliberately **not** trailed: the whole point is that failure history
/// survives backtracking and restarts to steer the search toward the
/// variables that keep causing trouble.
#[derive(Debug, Clone)]
pub struct TaskWeights {
    w: Vec<f64>,
    inc: f64,
    decay: f64,
}

impl TaskWeights {
    /// Flat counters for `n` tasks with the given decay factor in `(0, 1]`
    /// (1.0 = plain failure counts, no recency bias).
    pub fn new(n: usize, decay: f64) -> Self {
        debug_assert!(decay > 0.0 && decay <= 1.0, "decay {decay} out of range");
        TaskWeights {
            w: vec![0.0; n],
            inc: 1.0,
            decay,
        }
    }

    /// Charge one conflict to `t` and advance the decay clock.
    pub fn bump(&mut self, t: TaskRef) {
        self.w[t.idx()] += self.inc;
        self.inc /= self.decay;
        // Rescale before anything overflows; relative order is preserved.
        if self.inc > 1e100 {
            for w in &mut self.w {
                *w *= 1e-100;
            }
            self.inc *= 1e-100;
        }
    }

    /// Current weight of `t`.
    #[inline]
    pub fn weight(&self, t: TaskRef) -> f64 {
        self.w[t.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelBuilder, SlotKind};

    fn model() -> Model {
        let mut b = ModelBuilder::new();
        b.add_resource(1, 1);
        b.add_resource(1, 1);
        let j = b.add_job(3, 50);
        b.add_task(j, SlotKind::Map, 5, 1);
        b.add_task(j, SlotKind::Reduce, 5, 1);
        b.set_horizon(100);
        b.build().unwrap()
    }

    #[test]
    fn initial_domains() {
        let m = model();
        let d = Domains::new(&m);
        assert_eq!(d.lb(TaskRef(0)), 3);
        assert_eq!(d.ub(TaskRef(0)), 100);
        assert_eq!(d.mask(TaskRef(0)), 0b11);
        assert_eq!(d.late(JobRef(0)), Lateness::Unknown);
        assert!(!d.all_fixed());
    }

    #[test]
    fn bound_updates_and_conflicts() {
        let m = model();
        let mut d = Domains::new(&m);
        let t = TaskRef(0);
        assert!(d.set_lb(t, 10).unwrap());
        assert!(!d.set_lb(t, 5).unwrap(), "weaker bound is a no-op");
        assert!(d.set_ub(t, 20).unwrap());
        assert_eq!(d.set_lb(t, 21), Err(Conflict));
        assert!(d.fix_start(t, 15).unwrap());
        assert!(d.start_fixed(t));
    }

    #[test]
    fn mask_updates() {
        let m = model();
        let mut d = Domains::new(&m);
        let t = TaskRef(0);
        assert_eq!(d.assigned(t), None);
        assert!(d.remove_res(t, ResRef(0)).unwrap());
        assert_eq!(d.assigned(t), Some(ResRef(1)));
        assert_eq!(d.remove_res(t, ResRef(1)), Err(Conflict));
        assert_eq!(d.assign_res(t, ResRef(0)), Err(Conflict));
        assert!(!d.assign_res(t, ResRef(1)).unwrap(), "already singleton");
    }

    #[test]
    fn lateness_transitions() {
        let m = model();
        let mut d = Domains::new(&m);
        let j = JobRef(0);
        assert!(d.set_late(j, Lateness::OnTime).unwrap());
        assert!(!d.set_late(j, Lateness::OnTime).unwrap());
        assert_eq!(d.set_late(j, Lateness::Late), Err(Conflict));
        assert_eq!(d.late_count(), 0);
    }

    #[test]
    fn backtracking_restores_everything() {
        let m = model();
        let mut d = Domains::new(&m);
        let t = TaskRef(0);
        d.push_level();
        d.set_lb(t, 10).unwrap();
        d.remove_res(t, ResRef(0)).unwrap();
        d.set_late(JobRef(0), Lateness::Late).unwrap();
        assert_eq!(d.late_count(), 1);
        d.push_level();
        d.fix_start(t, 12).unwrap();
        assert_eq!(d.depth(), 2);
        d.pop_level();
        assert_eq!(d.lb(t), 10);
        assert!(!d.start_fixed(t));
        d.pop_level();
        assert_eq!(d.lb(t), 3);
        assert_eq!(d.mask(t), 0b11);
        assert_eq!(d.late(JobRef(0)), Lateness::Unknown);
        assert_eq!(d.depth(), 0);
    }

    #[test]
    fn dirty_queue_tracks_changes() {
        let m = model();
        let mut d = Domains::new(&m);
        assert!(d.dirty_is_empty());
        d.set_lb(TaskRef(0), 4).unwrap();
        d.set_late(JobRef(0), Lateness::Late).unwrap();
        let (ts, js) = d.drain_dirty();
        assert_eq!(ts, vec![TaskRef(0)]);
        assert_eq!(js, vec![JobRef(0)]);
        assert!(d.dirty_is_empty());
    }

    #[test]
    fn generation_moves_only_on_pop() {
        let m = model();
        let mut d = Domains::new(&m);
        let g0 = d.generation();
        d.push_level();
        d.set_lb(TaskRef(0), 10).unwrap();
        assert_eq!(d.generation(), g0, "narrowing does not change generation");
        d.pop_level();
        assert_ne!(d.generation(), g0, "pop changes generation");
    }

    #[test]
    fn stamps_move_on_every_narrowing_and_survive_pops() {
        let m = model();
        let mut d = Domains::new(&m);
        let t = TaskRef(0);
        let s0 = d.task_stamp(t);
        d.push_level();
        d.set_lb(t, 10).unwrap();
        let s1 = d.task_stamp(t);
        assert_ne!(s0, s1);
        d.remove_res(t, ResRef(0)).unwrap();
        let s2 = d.task_stamp(t);
        assert_ne!(s1, s2);
        d.pop_level();
        // Stamps are monotone (never rewound); generation covers the pop.
        assert_eq!(d.task_stamp(t), s2);
        // Untouched tasks keep their stamp.
        assert_eq!(d.task_stamp(TaskRef(1)), 0);
    }

    #[test]
    fn applied_cut_is_trailed() {
        let m = model();
        let mut d = Domains::new(&m);
        assert_eq!(d.applied_cut(), u32::MAX);
        d.push_level();
        d.note_applied_cut(3);
        assert_eq!(d.applied_cut(), 3);
        d.note_applied_cut(5); // looser: ignored
        assert_eq!(d.applied_cut(), 3);
        d.push_level();
        d.note_applied_cut(1);
        assert_eq!(d.applied_cut(), 1);
        d.pop_level();
        assert_eq!(d.applied_cut(), 3);
        d.pop_level();
        assert_eq!(d.applied_cut(), u32::MAX);
    }

    #[test]
    fn task_weights_bump_decay_and_rescale() {
        let mut w = TaskWeights::new(3, 0.5);
        w.bump(TaskRef(0));
        w.bump(TaskRef(1));
        w.bump(TaskRef(1));
        // Recency bias: two later bumps dwarf one early bump.
        assert!(w.weight(TaskRef(1)) > w.weight(TaskRef(0)));
        assert_eq!(w.weight(TaskRef(2)), 0.0);
        // Drive the increment past the rescale threshold; order survives.
        let mut big = TaskWeights::new(2, 0.5);
        big.bump(TaskRef(0));
        for _ in 0..400 {
            big.bump(TaskRef(1));
        }
        assert!(big.weight(TaskRef(1)) > big.weight(TaskRef(0)));
        assert!(big.weight(TaskRef(1)).is_finite());
    }

    #[test]
    fn pinned_task_domains_are_singletons() {
        let mut b = ModelBuilder::new();
        b.add_resource(1, 1);
        b.add_resource(1, 1);
        let j = b.add_job(10, 50);
        let t = b.add_task(j, SlotKind::Map, 5, 1);
        b.fix_task(t, crate::model::ResRef(1), 2);
        let m = b.build().unwrap();
        let d = Domains::new(&m);
        assert_eq!(d.lb(t), 2);
        assert_eq!(d.ub(t), 2);
        assert_eq!(d.assigned(t), Some(ResRef(1)));
        assert!(d.all_fixed());
    }
}
