//! Brute-force oracle for small instances.
//!
//! Exhaustively enumerates every `(resource, start)` placement of every task
//! over integer start times up to the model horizon, and returns the true
//! minimum number of late jobs. Exponential — usable only for the tiny
//! instances the solver's optimality tests and property tests construct,
//! which is exactly its purpose: an implementation-independent ground truth
//! that shares no code with the CP solver.

use crate::model::{Model, ResRef, SlotKind, TaskRef};

/// Exhaustive minimum of `Σ N_j` for `model`, exploring at most
/// `max_states` placement attempts. Returns `None` when the state budget is
/// exceeded or a pinned task is contradictory (no complete placement).
pub fn brute_force_optimal(model: &Model, max_states: u64) -> Option<u32> {
    // Placement order: maps before their job's reduces (barrier), and a
    // topological order over any user precedence edges, so each task's
    // earliest permissible start is known once its predecessors are placed.
    let mut order: Vec<TaskRef> = Vec::with_capacity(model.n_tasks());
    for j in 0..model.n_jobs() {
        order.extend(model.maps_of[j].iter().copied());
    }
    for j in 0..model.n_jobs() {
        order.extend(model.reduces_of[j].iter().copied());
    }
    if !model.precedences.is_empty() {
        // Stable topological sort over user edges PLUS the barrier edges
        // (each job's maps before its reduces), so every floor computation
        // below sees all of its inputs already placed.
        let n = model.n_tasks();
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &model.precedences {
            succs[a.idx()].push(b.idx());
            indeg[b.idx()] += 1;
        }
        for j in 0..model.n_jobs() {
            for &m in &model.maps_of[j] {
                for &r in &model.reduces_of[j] {
                    succs[m.idx()].push(r.idx());
                    indeg[r.idx()] += 1;
                }
            }
        }
        let mut placed = vec![false; n];
        let mut topo: Vec<TaskRef> = Vec::with_capacity(n);
        while topo.len() < n {
            let next = order
                .iter()
                .position(|t| !placed[t.idx()] && indeg[t.idx()] == 0)?; // cycle → None
            let t = order[next];
            placed[t.idx()] = true;
            for &s in &succs[t.idx()] {
                indeg[s] -= 1;
            }
            topo.push(t);
        }
        order = topo;
    }

    let horizon = model.horizon;
    let max_end = horizon + model.tasks.iter().map(|t| t.dur).max().unwrap_or(0) + 1;

    // usage[r][kind][t] = committed requirement at time t.
    let mut usage: Vec<[Vec<i64>; 2]> = (0..model.n_resources())
        .map(|_| {
            [
                vec![0i64; max_end.max(1) as usize],
                vec![0i64; max_end.max(1) as usize],
            ]
        })
        .collect();

    let mut starts = vec![0i64; model.n_tasks()];
    let mut resources = vec![ResRef(0); model.n_tasks()];
    let mut budget = max_states;
    let mut best: Option<u32> = None;

    fn kind_idx(k: SlotKind) -> usize {
        match k {
            SlotKind::Map => 0,
            SlotKind::Reduce => 1,
        }
    }

    // Depth-first over `order[pos..]`.
    #[allow(clippy::too_many_arguments)] // explicit recursion state, clearer than a struct here
    fn rec(
        model: &Model,
        order: &[TaskRef],
        pos: usize,
        usage: &mut [[Vec<i64>; 2]],
        starts: &mut [i64],
        resources: &mut [ResRef],
        best: &mut Option<u32>,
        budget: &mut u64,
    ) {
        if *budget == 0 {
            return;
        }
        if pos == order.len() {
            // Count late jobs.
            let mut late = 0u32;
            for j in 0..model.n_jobs() {
                let job = crate::model::JobRef(j as u32);
                let completion = model
                    .tasks_of(job)
                    .map(|t| starts[t.idx()] + model.tasks[t.idx()].dur)
                    .max();
                if let Some(c) = completion {
                    if c > model.jobs[j].deadline {
                        late += 1;
                    }
                }
            }
            if best.is_none_or(|b| late < b) {
                *best = Some(late);
            }
            return;
        }
        // Bound: a completed placement can't beat the incumbent of 0.
        if *best == Some(0) {
            return;
        }

        let t = order[pos];
        let spec = &model.tasks[t.idx()];
        let ki = kind_idx(spec.kind);
        let req = spec.req as i64;

        // Barrier floor: reduces wait for their job's maps (all already
        // placed thanks to the ordering); user precedence floors likewise.
        let mut floor = model.task_release(t);
        if spec.kind == SlotKind::Reduce {
            for &m in &model.maps_of[spec.job.idx()] {
                floor = floor.max(starts[m.idx()] + model.tasks[m.idx()].dur);
            }
        }
        for &(a, b) in &model.precedences {
            if b == t {
                floor = floor.max(starts[a.idx()] + model.tasks[a.idx()].dur);
            }
        }

        let placements: Vec<(ResRef, i64)> = match spec.fixed {
            Some((r, s)) => vec![(r, s)],
            None => {
                let mut v = Vec::new();
                for r in 0..model.n_resources() {
                    if model.resources[r].cap(spec.kind) < spec.req {
                        continue;
                    }
                    for s in floor..=model.horizon {
                        v.push((ResRef(r as u32), s));
                    }
                }
                v
            }
        };

        'outer: for (r, s) in placements {
            if *budget == 0 {
                return;
            }
            *budget -= 1;
            let cap = model.resources[r.idx()].cap(spec.kind) as i64;
            let lane = &mut usage[r.idx()][ki];
            let lo = s.max(0) as usize;
            let hi = ((s + spec.dur).max(0) as usize).min(lane.len());
            for slot in lane[lo..hi].iter() {
                if slot + req > cap {
                    continue 'outer;
                }
            }
            for slot in lane[lo..hi].iter_mut() {
                *slot += req;
            }
            starts[t.idx()] = s;
            resources[t.idx()] = r;
            rec(
                model,
                order,
                pos + 1,
                usage,
                starts,
                resources,
                best,
                budget,
            );
            let lane = &mut usage[r.idx()][ki];
            for slot in lane[lo..hi].iter_mut() {
                *slot -= req;
            }
        }
    }

    rec(
        model,
        &order,
        0,
        &mut usage,
        &mut starts,
        &mut resources,
        &mut best,
        &mut budget,
    );
    if budget == 0 {
        return None; // exhausted the state budget: result not trustworthy
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelBuilder, SlotKind};

    #[test]
    fn trivial_instance_optimum_zero() {
        let mut b = ModelBuilder::new();
        b.add_resource(1, 1);
        let j = b.add_job(0, 10);
        b.add_task(j, SlotKind::Map, 5, 1);
        b.set_horizon(6);
        let m = b.build().unwrap();
        assert_eq!(brute_force_optimal(&m, 1_000_000), Some(0));
    }

    #[test]
    fn impossible_deadline_optimum_one() {
        let mut b = ModelBuilder::new();
        b.add_resource(1, 1);
        let j = b.add_job(0, 3);
        b.add_task(j, SlotKind::Map, 5, 1);
        b.set_horizon(6);
        let m = b.build().unwrap();
        assert_eq!(brute_force_optimal(&m, 1_000_000), Some(1));
    }

    #[test]
    fn contention_forces_one_late() {
        let mut b = ModelBuilder::new();
        b.add_resource(1, 1);
        for _ in 0..2 {
            let j = b.add_job(0, 6);
            b.add_task(j, SlotKind::Map, 5, 1);
        }
        b.set_horizon(11);
        let m = b.build().unwrap();
        assert_eq!(brute_force_optimal(&m, 10_000_000), Some(1));
    }

    #[test]
    fn barrier_respected_in_oracle() {
        let mut b = ModelBuilder::new();
        b.add_resource(1, 1);
        let j = b.add_job(0, 7);
        b.add_task(j, SlotKind::Map, 4, 1);
        b.add_task(j, SlotKind::Reduce, 4, 1);
        b.set_horizon(9);
        let m = b.build().unwrap();
        // reduce can start at 4 at the earliest → ends at 8 > 7 → 1 late.
        assert_eq!(brute_force_optimal(&m, 10_000_000), Some(1));
    }

    #[test]
    fn respects_user_precedences() {
        // Chain of two 3-long maps on 2 free resources: serialized by the
        // edge, so a 5-deadline is missed but 6 is met.
        let mut b = ModelBuilder::new();
        b.add_resource(2, 1);
        let j = b.add_job(0, 5);
        let a = b.add_task(j, SlotKind::Map, 3, 1);
        let c = b.add_task(j, SlotKind::Map, 3, 1);
        b.add_precedence(a, c);
        b.set_horizon(8);
        let m = b.build().unwrap();
        assert_eq!(brute_force_optimal(&m, 10_000_000), Some(1));

        let mut b = ModelBuilder::new();
        b.add_resource(2, 1);
        let j = b.add_job(0, 6);
        let a = b.add_task(j, SlotKind::Map, 3, 1);
        let c = b.add_task(j, SlotKind::Map, 3, 1);
        b.add_precedence(a, c);
        b.set_horizon(8);
        let m = b.build().unwrap();
        assert_eq!(brute_force_optimal(&m, 10_000_000), Some(0));
    }

    #[test]
    fn state_budget_returns_none() {
        let mut b = ModelBuilder::new();
        b.add_resource(1, 1);
        let j = b.add_job(0, 100);
        for _ in 0..4 {
            b.add_task(j, SlotKind::Map, 5, 1);
        }
        let m = b.build().unwrap();
        assert_eq!(brute_force_optimal(&m, 3), None);
    }
}
