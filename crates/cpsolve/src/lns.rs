//! Large neighborhood search over the incumbent schedule.
//!
//! LNS is the standard industrial rung for anytime scheduling of this
//! shape: keep the incumbent, *freeze* every task outside a relaxation
//! window, and re-solve only the window with the full propagator stack
//! under a small node budget. Accepted improvements become the new
//! incumbent; the window rotates over the late jobs and their
//! temporal/resource neighbors, so each iteration attacks a different
//! part of the schedule. Because every restricted re-solve starts from a
//! feasible incumbent and only strict objective improvements are
//! accepted, the phase can never worsen the result, and the unrestricted
//! branch-and-bound that follows it keeps the optimality/infeasibility
//! proofs exactly as before.
//!
//! Neighborhood selection is seeded ([`splitmix64`]) and purely
//! count-driven, so a given `(model, params)` pair walks the same
//! neighborhoods on every machine — the determinism anchors (federation
//! `cells=1` bit-exactness, chaos-off bit-identity, crash-recovery
//! signatures) rely on this.

use crate::model::{JobRef, Model, ResRef, TaskRef};
use crate::search::{solve_restricted, SharedSearch, SolveParams, SolveStats, Status};
use crate::solution::Solution;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Large-neighborhood-search phase configuration (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LnsParams {
    /// Run the LNS phase before the unrestricted branch-and-bound.
    pub enabled: bool,
    /// Fraction of the node/fail/time budgets the phase may consume
    /// (`1.0` = pure LNS: the B&B phase only runs if nodes remain).
    pub budget_frac: f64,
    /// Node budget per restricted re-solve.
    pub iter_nodes: u64,
    /// Stop after this many consecutive non-improving iterations.
    pub no_improve_cap: u32,
    /// Relaxation window size as a fraction of the job count.
    pub window_frac: f64,
    /// Minimum window size in jobs.
    pub min_window_jobs: usize,
    /// Neighborhood selection seed (portfolio workers diversify this).
    pub seed: u64,
}

impl Default for LnsParams {
    fn default() -> Self {
        LnsParams {
            enabled: true,
            budget_frac: 0.4,
            iter_nodes: 600,
            no_improve_cap: 8,
            window_frac: 0.3,
            min_window_jobs: 4,
            seed: 0,
        }
    }
}

impl LnsParams {
    /// A pure-LNS configuration (no budget held back for the B&B phase)
    /// with a distinct neighborhood seed — the portfolio's diversification
    /// axis.
    pub fn pure(seed: u64) -> Self {
        LnsParams {
            budget_frac: 1.0,
            seed,
            ..LnsParams::default()
        }
    }
}

/// Deterministic 64-bit mixer (splitmix64 finalizer) used for seeded
/// neighborhood rotation and tie-breaking.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-job view of the incumbent used for neighbor scoring.
struct JobView {
    /// Earliest task start in the incumbent.
    lo: i64,
    /// Latest task end in the incumbent.
    hi: i64,
    /// Resources the job's tasks occupy (bitmask over [`ResRef`]).
    res_mask: u128,
}

fn job_views(model: &Model, sol: &Solution) -> Vec<JobView> {
    (0..model.n_jobs())
        .map(|j| {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            let mut res_mask = 0u128;
            for t in model.tasks_of(JobRef(j as u32)) {
                lo = lo.min(sol.starts[t.idx()]);
                hi = hi.max(sol.end(model, t));
                res_mask |= 1u128 << sol.resource[t.idx()].idx();
            }
            JobView { lo, hi, res_mask }
        })
        .collect()
}

/// Run the LNS phase: iteratively re-solve relaxation windows of `best`,
/// accepting strict improvements. Accumulates all restricted-search effort
/// into `stats` (so the caller's budgets see it) and publishes improvements
/// to `shared`. Returns early on target reached, budget exhaustion,
/// cooperative cancellation, or `no_improve_cap` consecutive dry windows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn improve(
    model: &Model,
    params: &SolveParams,
    shared: Option<&SharedSearch>,
    best: &mut Solution,
    stats: &mut SolveStats,
    t0: Instant,
    target: u32,
) {
    let cfg = params.lns;
    let n_jobs = model.n_jobs();
    if n_jobs == 0 || best.objective <= target {
        return;
    }
    let node_budget = frac_of(params.node_limit, cfg.budget_frac);
    let fail_budget = frac_of(params.fail_limit, cfg.budget_frac);
    let time_slice = params
        .time_limit
        .map(|tl| tl.mul_f64(cfg.budget_frac.clamp(0.0, 1.0)));

    let wsize = ((n_jobs as f64 * cfg.window_frac).ceil() as usize)
        .max(cfg.min_window_jobs)
        .min(n_jobs);

    let mut views = job_views(model, best);
    let mut no_improve = 0u32;
    let mut iter = 0u64;
    // Scratch reused across iterations.
    let mut in_window = vec![false; n_jobs];
    let mut ranked: Vec<(u64, usize)> = Vec::with_capacity(n_jobs);
    let mut fixes: Vec<(TaskRef, ResRef, i64)> = Vec::with_capacity(model.n_tasks());

    loop {
        if best.objective <= target || no_improve >= cfg.no_improve_cap {
            break;
        }
        if stats.nodes >= node_budget || stats.fails >= fail_budget {
            break;
        }
        if time_slice.is_some_and(|tl| t0.elapsed() >= tl) {
            break;
        }
        if shared.is_some_and(|sh| sh.cancel.load(Ordering::Relaxed)) {
            break;
        }
        let late: Vec<usize> = (0..n_jobs).filter(|&j| best.late[j]).collect();
        if late.is_empty() {
            break; // nothing left to repair
        }

        // Focus: rotate over the late jobs, seeded per iteration.
        let r = splitmix64(cfg.seed ^ iter.wrapping_mul(0x9e37_79b9));
        let focus = late[(r % late.len() as u64) as usize];

        // Rank the other jobs by affinity to the focus job in the
        // incumbent: other late jobs first, then resource-sharing
        // temporal neighbors, then plain temporal neighbors, then the
        // rest; seeded jitter breaks ties so repeat visits to the same
        // focus still explore different windows.
        let fv = &views[focus];
        ranked.clear();
        for (j, v) in views.iter().enumerate() {
            if j == focus {
                continue;
            }
            let overlaps = v.lo < fv.hi && fv.lo < v.hi;
            let shares = v.res_mask & fv.res_mask != 0;
            let score: u64 = if best.late[j] {
                3
            } else if overlaps && shares {
                2
            } else if overlaps || shares {
                1
            } else {
                0
            };
            let jitter = splitmix64(r ^ (j as u64).wrapping_mul(0xd134_2543_de82_ef95));
            // Sort key: higher score first, then jitter (ascending).
            ranked.push(((3 - score) << 61 | (jitter >> 3), j));
        }
        ranked.sort_unstable();
        in_window.iter_mut().for_each(|b| *b = false);
        in_window[focus] = true;
        for &(_, j) in ranked.iter().take(wsize.saturating_sub(1)) {
            in_window[j] = true;
        }

        // Freeze everything outside the window at the incumbent placement.
        fixes.clear();
        for (j, &inside) in in_window.iter().enumerate() {
            if inside {
                continue;
            }
            for t in model.tasks_of(JobRef(j as u32)) {
                fixes.push((t, best.resource[t.idx()], best.starts[t.idx()]));
            }
        }

        // Restricted re-solve from the incumbent with the remaining budget.
        let remaining_nodes = node_budget.saturating_sub(stats.nodes).max(1);
        let sub = SolveParams {
            node_limit: cfg.iter_nodes.min(remaining_nodes),
            fail_limit: cfg.iter_nodes,
            time_limit: time_slice.map(|tl| tl.saturating_sub(t0.elapsed())),
            warm_start: false,
            initial: Some(best.clone()),
            target: Some(target),
            restarts: None,
            lns: LnsParams {
                enabled: false,
                ..cfg
            },
            ..params.clone()
        };
        let out = solve_restricted(model, &sub, &fixes, shared);
        iter += 1;
        stats.lns_iters += 1;
        absorb(stats, &out.stats);

        let improved = out
            .best
            .as_ref()
            .is_some_and(|s| s.objective < best.objective);
        if improved {
            *best = out.best.unwrap();
            stats.lns_improves += 1;
            no_improve = 0;
            if let Some(sh) = shared {
                sh.publish(best.objective);
            }
            views = job_views(model, best);
        } else {
            no_improve += 1;
            if out.status == Status::Unknown && out.best.is_none() && iter == 1 {
                // Defensive: a restricted solve that cannot even replay the
                // incumbent (should be impossible) ends the phase.
                break;
            }
        }
    }
}

/// `frac` of a budget, treating `u64::MAX` as unlimited.
fn frac_of(v: u64, frac: f64) -> u64 {
    if v == u64::MAX || frac >= 1.0 {
        v
    } else {
        ((v as f64 * frac) as u64).max(1)
    }
}

/// Fold a restricted re-solve's effort counters into the phase totals.
fn absorb(stats: &mut SolveStats, sub: &SolveStats) {
    stats.nodes += sub.nodes;
    stats.fails += sub.fails;
    stats.solutions += sub.solutions;
    stats.restarts += sub.restarts;
    stats.propagations += sub.propagations;
    stats.prunings += sub.prunings;
    for (acc, s) in stats.by_class.iter_mut().zip(sub.by_class.iter()) {
        acc.merge(s);
    }
    stats.sched.merge(&sub.sched);
}
