//! Benchmark trajectory runner: solves the shared bench fixtures and writes
//! a machine-readable `BENCH_solver.json` so successive commits can be
//! compared (the "trajectory" of solver performance over the repo's life).
//!
//! Sections:
//!
//! * `sizes` — per instance size: p50/p95 single-threaded **time-to-target**
//!   and nodes-to-target over `reps` seeds (target = one fewer late job than
//!   greedy EDF, i.e. the first strict improvement over the warm start),
//!   plus the per-class propagation ledger (runs / prunings / conflicts /
//!   skipped / time / prunings-per-µs) and the cost-aware scheduler's
//!   demotion-decision counters,
//! * `lns` — the self-tuning ablation at the largest size: time-to-target
//!   under every {prop_scheduling, lns} combination,
//! * `portfolio` — median portfolio latency and speedup for K ∈ {1,2,4,8}
//!   workers on the largest size,
//! * `rounds` — median manager round latency warm (cross-round reuse on,
//!   second round replays cached placements) vs cold (reuse off).
//!
//! Time-to-target (rather than time-to-proof under a wall cap) is the
//! comparable number for an anytime solver: a faster propagation stack
//! should *reduce* it, whereas under a fixed cap it would just explore more
//! nodes and report the same latency. Runs that never reach the target are
//! charged whatever the budget allowed and counted in `reached_target`.
//!
//! Usage: `cargo run --release -p bench --bin bench_json -- [--smoke] [--out PATH]`
//!
//! `--smoke` trims the portfolio/rounds reps for CI; timing numbers are then
//! meaningless but the JSON shape is identical (checked by CI) and the
//! `sizes` section keeps the full size and rep set so its nodes_p50 stays
//! comparable with the committed full run (CI's regression guard — node
//! counts, unlike latencies, travel across machines).

use std::time::Instant;

use bench::batch_scenario;
use cpsolve::portfolio::{solve_portfolio, PortfolioParams};
use cpsolve::search::{solve, SolveParams};
use cpsolve::LnsParams;
use desim::stats::sample_quantile;
use desim::SimTime;
use mrcp::modelmap::{build_model, JobInput, TaskInput};
use mrcp::{MrcpConfig, MrcpRm};
use serde_json::Value;

fn job_inputs(jobs: &[workload::Job]) -> Vec<JobInput<'_>> {
    jobs.iter()
        .map(|job| JobInput {
            job,
            release: job.earliest_start,
            priority: job.deadline.as_millis(),
            tasks: job
                .tasks()
                .map(|t| TaskInput {
                    id: t.id,
                    kind: t.kind,
                    exec_time: t.exec_time,
                    req: t.req,
                    pinned: None,
                })
                .collect(),
        })
        .collect()
}

/// Sorted-sample quantile (nearest-rank); `q` in [0, 1].
/// Nearest-rank quantile via the workspace-shared helper; panics on an
/// empty sample set (a bench that produced no samples is a bug).
fn quantile(samples: &[u64], q: f64) -> u64 {
    sample_quantile(samples, q).expect("bench produced samples")
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    quantile(samples, 0.5)
}

fn solver_params() -> SolveParams {
    SolveParams {
        node_limit: 50_000,
        fail_limit: 50_000,
        time_limit: Some(std::time::Duration::from_millis(500)),
        ..Default::default()
    }
}

/// One race-to-target solve of a bench fixture: target is one fewer late
/// job than greedy EDF achieves (seeds where greedy is already perfect race
/// to prove zero). Returns (elapsed µs, outcome, reached).
fn race(n: usize, seed: u64, params: &SolveParams) -> (u64, cpsolve::Outcome, bool) {
    let (cluster, jobs) = batch_scenario(n, seed);
    let ji = job_inputs(&jobs);
    let mm = build_model(&cluster, &ji).expect("bench fixture builds");
    let g = cpsolve::greedy::greedy_edf(&mm.model).expect("greedy schedules the fixture");
    let target = g.objective.saturating_sub(1);
    let p = SolveParams {
        target: Some(target),
        ..params.clone()
    };
    let t0 = Instant::now();
    let o = solve(&mm.model, &p);
    let us = t0.elapsed().as_micros() as u64;
    let reached = o.best.as_ref().is_some_and(|b| b.objective <= target);
    (us, o, reached)
}

/// Per-size single-threaded time-to-target / nodes-to-target distribution,
/// plus the per-propagator-class counters summed over reps (runs / prunings
/// / conflicts / skipped / time / prunings-per-µs) and the cost-aware
/// scheduler's demotion decisions — the observability surface of the tiered
/// engine. One discarded warmup rep per size keeps first-touch effects
/// (lazy page faults, cold caches) out of the quantiles.
fn bench_sizes(sizes: &[usize], reps: u64) -> Value {
    let params = solver_params();
    let mut out = Vec::new();
    for &n in sizes {
        let mut lat_us: Vec<u64> = Vec::new();
        let mut nodes: Vec<u64> = Vec::new();
        let mut reached_target = 0u64;
        let mut lns_iters = 0u64;
        let mut lns_improves = 0u64;
        let mut by_class = [cpsolve::PropClassStats::default(); cpsolve::N_PROP_CLASSES];
        let mut sched = cpsolve::SchedStats::default();
        // Warmup: same fixture as rep 0, solved and discarded.
        let _ = race(n, 1, &params);
        for rep in 0..reps {
            let (us, o, reached) = race(n, 7 * rep + 1, &params);
            lat_us.push(us);
            nodes.push(o.stats.nodes);
            if reached {
                reached_target += 1;
            }
            lns_iters += o.stats.lns_iters;
            lns_improves += o.stats.lns_improves;
            sched.merge(&o.stats.sched);
            for (acc, c) in by_class.iter_mut().zip(o.stats.by_class.iter()) {
                acc.merge(c);
            }
        }
        lat_us.sort_unstable();
        nodes.sort_unstable();
        let classes = Value::Map(
            cpsolve::PROP_CLASSES
                .iter()
                .map(|&c| {
                    let s = by_class[c.idx()];
                    (
                        c.name().into(),
                        Value::Map(vec![
                            ("runs".into(), Value::UInt(s.runs)),
                            ("prunings".into(), Value::UInt(s.prunings)),
                            ("conflicts".into(), Value::UInt(s.conflicts)),
                            ("skipped".into(), Value::UInt(s.skipped)),
                            ("time_us".into(), Value::UInt(s.time_us)),
                            ("prunings_per_us".into(), Value::Float(s.prunings_per_us())),
                        ]),
                    )
                })
                .collect(),
        );
        out.push(Value::Map(vec![
            ("n_jobs".into(), Value::UInt(n as u64)),
            ("reps".into(), Value::UInt(reps)),
            ("p50_us".into(), Value::UInt(quantile(&lat_us, 0.5))),
            ("p95_us".into(), Value::UInt(quantile(&lat_us, 0.95))),
            ("nodes_p50".into(), Value::UInt(quantile(&nodes, 0.5))),
            ("nodes_p95".into(), Value::UInt(quantile(&nodes, 0.95))),
            ("reached_target".into(), Value::UInt(reached_target)),
            ("lns_iters".into(), Value::UInt(lns_iters)),
            ("lns_improves".into(), Value::UInt(lns_improves)),
            (
                "sched".into(),
                Value::Map(vec![
                    ("demotions".into(), Value::UInt(sched.demotions)),
                    ("disables".into(), Value::UInt(sched.disables)),
                    ("repromotions".into(), Value::UInt(sched.repromotions)),
                ]),
            ),
            ("by_class".into(), classes),
        ]));
    }
    Value::Seq(out)
}

/// The self-tuning ablation at the largest size: time-to-target under every
/// {prop_scheduling, lns} combination over the same seeds. The default
/// (both on) should dominate the static solver (both off).
fn bench_lns(n: usize, reps: u64) -> Value {
    let variants: [(&str, bool, bool); 4] = [
        ("sched+lns", true, true),
        ("sched", true, false),
        ("lns", false, true),
        ("static", false, false),
    ];
    let mut rows = Vec::new();
    for (name, sched_on, lns_on) in variants {
        let params = SolveParams {
            prop_scheduling: sched_on,
            lns: LnsParams {
                enabled: lns_on,
                ..LnsParams::default()
            },
            ..solver_params()
        };
        let mut lat_us: Vec<u64> = Vec::new();
        let mut reached = 0u64;
        let _ = race(n, 1, &params); // warmup, discarded
        for rep in 0..reps {
            let (us, _, hit) = race(n, 7 * rep + 1, &params);
            lat_us.push(us);
            if hit {
                reached += 1;
            }
        }
        rows.push(Value::Map(vec![
            ("variant".into(), Value::Str(name.into())),
            ("reps".into(), Value::UInt(reps)),
            ("p50_us".into(), Value::UInt(median(&mut lat_us))),
            ("reached_target".into(), Value::UInt(reached)),
        ]));
    }
    Value::Seq(rows)
}

/// Portfolio speedup as time-to-target-quality: every K races to the first
/// schedule strictly better than the greedy warm start
/// (`SolveParams::target` stops the search at the first incumbent ≤
/// target; the shared cancel flag then stops the other workers). These
/// fixtures are far too hard to prove optimal, so time-to-proof would just
/// measure the time limit; time-to-equal-quality is the comparable number.
/// Runs that never reach the target are charged the full cap. At K ≥ 2 the
/// odd workers run pure-LNS repair over diversified neighborhood seeds and
/// window sizes, sharing the incumbent through the portfolio's atomic cut.
fn bench_portfolio(n: usize, reps: u64) -> Value {
    let cap = std::time::Duration::from_secs(2);
    // Target per rep: one fewer late job than greedy EDF achieves (reps
    // where greedy is already perfect race to prove zero, i.e. target 0).
    let mut targets: Vec<u32> = Vec::new();
    for rep in 0..reps {
        let (cluster, jobs) = batch_scenario(n, 11 * rep + 3);
        let mm = build_model(&cluster, &job_inputs(&jobs)).expect("bench fixture builds");
        let g = cpsolve::greedy::greedy_edf(&mm.model).expect("greedy schedules the fixture");
        targets.push(g.objective.saturating_sub(1));
    }
    let mut rows: Vec<(usize, u64, u64)> = Vec::new(); // (K, median us, reached)
    for &k in &[1usize, 2, 4, 8] {
        let mut lat_us: Vec<u64> = Vec::new();
        let mut reached = 0u64;
        for rep in 0..reps {
            let (cluster, jobs) = batch_scenario(n, 11 * rep + 3);
            let mm = build_model(&cluster, &job_inputs(&jobs)).expect("bench fixture builds");
            let pp = PortfolioParams {
                base: SolveParams {
                    target: Some(targets[rep as usize]),
                    time_limit: Some(cap),
                    node_limit: u64::MAX,
                    fail_limit: u64::MAX,
                    ..Default::default()
                },
                workers: k,
                seed: 0,
            };
            let t0 = Instant::now();
            let o = solve_portfolio(&mm.model, &pp);
            lat_us.push(t0.elapsed().as_micros() as u64);
            let best = o.best.expect("bench fixtures are feasible");
            if best.objective <= targets[rep as usize] {
                reached += 1;
            }
        }
        rows.push((k, median(&mut lat_us), reached));
    }
    let base = rows[0].1.max(1) as f64;
    Value::Seq(
        rows.into_iter()
            .map(|(k, us, reached)| {
                Value::Map(vec![
                    ("workers".into(), Value::UInt(k as u64)),
                    ("p50_us".into(), Value::UInt(us)),
                    ("reached_target".into(), Value::UInt(reached)),
                    ("reps".into(), Value::UInt(reps)),
                    ("speedup".into(), Value::Float(base / us.max(1) as f64)),
                ])
            })
            .collect(),
    )
}

/// Warm-vs-cold manager rounds: both managers solve two identical rounds;
/// the second round is timed. With `reuse_rounds` on it replays the cached
/// placements as warm start; off, it solves from scratch.
fn bench_rounds(n: usize, reps: u64) -> Value {
    let run = |reuse: bool| -> Vec<u64> {
        let mut lat_us = Vec::new();
        for rep in 0..reps {
            let (cluster, jobs) = batch_scenario(n, 13 * rep + 5);
            let mut rm = MrcpRm::new(
                MrcpConfig {
                    reuse_rounds: reuse,
                    verify_schedules: false,
                    ..Default::default()
                },
                cluster,
            );
            for mut j in jobs {
                // The generator staggers arrivals slightly; pull everything
                // to t = 0 so both rounds plan the full batch.
                j.arrival = SimTime::ZERO;
                j.earliest_start = SimTime::ZERO;
                rm.submit(j, SimTime::ZERO).expect("bench jobs admit");
            }
            rm.reschedule(SimTime::ZERO);
            let t0 = Instant::now();
            rm.reschedule(SimTime::ZERO);
            lat_us.push(t0.elapsed().as_micros() as u64);
            if reuse {
                assert_eq!(rm.stats().warm_rounds, 1, "second round must be warm");
            }
        }
        lat_us
    };
    let warm = median(&mut run(true));
    let cold = median(&mut run(false));
    Value::Map(vec![
        ("n_jobs".into(), Value::UInt(n as u64)),
        ("reps".into(), Value::UInt(reps)),
        ("warm_us".into(), Value::UInt(warm)),
        ("cold_us".into(), Value::UInt(cold)),
        (
            "warm_over_cold".into(),
            Value::Float(warm.max(1) as f64 / cold.max(1) as f64),
        ),
    ])
}

fn main() {
    let args = bench::common::parse_args("bench_json", "BENCH_solver.json", false);
    let (smoke, out_path) = (args.smoke, args.out_path);

    // Smoke trims the portfolio/rounds/lns reps, but keeps the full size
    // and rep set for `sizes`: CI compares its nodes_p50 and p50_us against
    // the committed full run, and quantiles are only comparable when the
    // seed set matches.
    let sizes: &[usize] = &[5, 15, 30];
    let size_reps: u64 = 15;
    let reps: u64 = if smoke { 3 } else { 15 };
    let top = *sizes.last().unwrap();

    eprintln!(
        "bench_json: sizes {sizes:?}, {reps} reps{}",
        if smoke { " (smoke)" } else { "" }
    );
    let doc = Value::Map(vec![
        ("schema".into(), Value::Str("bench_solver/v2".into())),
        ("smoke".into(), Value::Bool(smoke)),
        ("sizes".into(), bench_sizes(sizes, size_reps)),
        ("lns".into(), bench_lns(top, reps)),
        ("portfolio".into(), bench_portfolio(top, reps)),
        ("rounds".into(), bench_rounds(top, reps)),
    ]);

    bench::common::write_json("bench_json", &out_path, &doc);
}
