//! Durability overhead and recovery-latency sweep: answers the three
//! questions the durability layer raises and writes a machine-readable
//! `BENCH_recovery.json`.
//!
//! * `append` — nanoseconds to WAL-append one typical manager event, per
//!   fsync batch size (`sync_every`): the per-command tax of durability.
//! * `rounds` — p50/p95 federation round latency with the WAL on vs off
//!   over the same workload (common random numbers): the end-to-end tax.
//!   The acceptance bar is WAL-on p95 within 10% of WAL-off — appends
//!   happen on the event path, not inside the solve, so round latency
//!   should barely move.
//! * `recovery` — microseconds to rebuild a manager from snapshot +
//!   replay, as a function of the WAL length since the last snapshot:
//!   the knob `snapshot_every` trades write amplification against.
//!
//! Usage: `cargo run --release -p bench --bin bench_recovery -- [--smoke] [--out PATH]`
//!
//! `--smoke` shrinks everything for CI; timings are then meaningless but
//! the JSON shape is identical (checked by CI's key probe).

use cluster::{simulate_cluster, simulate_cluster_durable, ClusterConfig, ClusterSimConfig};
use desim::stats::sample_quantile;
use desim::{RngStreams, SimTime};
use durability::{
    scratch_dir, DurabilityConfig, DurableRm, ManagerEvent, StoreConfig, Wal, WalConfig,
};
use mrcp::sim_driver::ResourceManager;
use mrcp::SimConfig;
use serde_json::Value;
use std::time::Instant;
use workload::{Job, Resource, SyntheticConfig, SyntheticGenerator};

fn scenario(n_jobs: usize, rep: u64) -> (Vec<Resource>, Vec<Job>) {
    let cfg = SyntheticConfig {
        maps_per_job: (1, 4),
        reduces_per_job: (1, 2),
        e_max: 20,
        p_future_start: 0.0,
        s_max: 1,
        deadline_multiplier: 4.0,
        lambda: 2.0,
        resources: 8,
        map_capacity: 2,
        reduce_capacity: 2,
        ..Default::default()
    };
    cfg.validate();
    let rng = RngStreams::new(7_000 + 1000 * n_jobs as u64 + rep).stream("bench-recovery");
    let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n_jobs);
    (cfg.cluster(), jobs)
}

/// Sorted-sample quantile (nearest-rank); `q` in [0, 1].
/// Nearest-rank quantile via the workspace-shared helper; panics on an
/// empty sample set (a bench that produced no samples is a bug).
fn quantile(samples: &[u64], q: f64) -> u64 {
    sample_quantile(samples, q).expect("bench produced samples")
}

/// A typical WAL payload: one mid-size job submission, pre-encoded.
fn typical_payload() -> Vec<u8> {
    let (_, jobs) = scenario(4, 0);
    ManagerEvent::SubmitWithAdmission {
        job: jobs.into_iter().next().expect("generator yields jobs"),
        now: SimTime::from_secs(1),
    }
    .to_bytes()
}

fn bench_append(sync_every: u64, events: u64) -> Value {
    let dir = scratch_dir("bench-append");
    let payload = typical_payload();
    let mut wal = Wal::create(&dir.join("wal.log"), WalConfig { sync_every }).expect("create WAL");
    let t0 = Instant::now();
    for _ in 0..events {
        wal.append(&payload).expect("append");
    }
    wal.sync().expect("final sync");
    let ns = t0.elapsed().as_nanos() as u64 / events.max(1);
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    Value::Map(vec![
        ("sync_every".into(), Value::UInt(sync_every)),
        ("events".into(), Value::UInt(events)),
        ("payload_bytes".into(), Value::UInt(payload.len() as u64)),
        ("ns_per_append".into(), Value::UInt(ns)),
    ])
}

/// p50/p95 round latency over `reps` runs of the same workload, with and
/// without the durability layer underneath the federation.
fn bench_rounds(n_jobs: usize, reps: u64) -> Value {
    let cfg = ClusterSimConfig {
        sim: SimConfig::default(),
        cluster: ClusterConfig {
            cells: 2,
            ..Default::default()
        },
    };
    let mut off_us: Vec<u64> = Vec::new();
    let mut on_us: Vec<u64> = Vec::new();
    for rep in 0..reps {
        let (resources, jobs) = scenario(n_jobs, rep);
        let (_, cm) = simulate_cluster(&cfg, &resources, jobs.clone());
        off_us.extend(cm.round_latencies_us.iter().copied());

        let dir = scratch_dir("bench-rounds");
        let (_, _, fed) =
            simulate_cluster_durable(&cfg, &resources, jobs, &dir, DurabilityConfig::default());
        on_us.extend(fed.federation().cluster_metrics().round_latencies_us.iter());
        let _ = std::fs::remove_dir_all(&dir);
    }
    off_us.sort_unstable();
    on_us.sort_unstable();
    let p95_off = quantile(&off_us, 0.95);
    let p95_on = quantile(&on_us, 0.95);
    Value::Map(vec![
        ("n_jobs".into(), Value::UInt(n_jobs as u64)),
        ("reps".into(), Value::UInt(reps)),
        ("p50_us_wal_off".into(), Value::UInt(quantile(&off_us, 0.5))),
        ("p50_us_wal_on".into(), Value::UInt(quantile(&on_us, 0.5))),
        ("p95_us_wal_off".into(), Value::UInt(p95_off)),
        ("p95_us_wal_on".into(), Value::UInt(p95_on)),
        (
            "p95_ratio".into(),
            Value::Float(p95_on as f64 / p95_off.max(1) as f64),
        ),
    ])
}

/// Time a full crash + rebuild with `events` commands in the WAL since
/// the last snapshot (snapshot_every is set above `events` so the replay
/// length is exactly the event count).
fn bench_recovery(events: u64) -> Value {
    let (resources, jobs) = scenario(events as usize, 1);
    let dir = scratch_dir("bench-recover");
    let durability = DurabilityConfig {
        store: StoreConfig {
            snapshot_every: events + 1,
            wal: WalConfig::default(),
        },
        ..Default::default()
    };
    let sim = SimConfig::default();
    let mut rm = DurableRm::new(sim.manager, resources.clone(), &dir, durability);
    let mut now = SimTime::ZERO;
    let mut applied = 0u64;
    for job in jobs {
        if applied + 2 > events {
            break;
        }
        now = now.max(job.arrival);
        let _ = rm.submit_with_admission(job, now);
        rm.reschedule(now);
        applied += 2;
    }
    let t0 = Instant::now();
    assert!(rm.crash_and_recover(now), "durable manager must recover");
    let us = t0.elapsed().as_micros() as u64;
    drop(rm);
    let _ = std::fs::remove_dir_all(&dir);
    Value::Map(vec![
        ("events_since_snapshot".into(), Value::UInt(applied)),
        ("recover_us".into(), Value::UInt(us)),
    ])
}

fn main() {
    let args = bench::common::parse_args("bench_recovery", "BENCH_recovery.json", false);
    let (smoke, out_path) = (args.smoke, args.out_path);

    let (batched_events, synced_events, round_jobs, round_reps, recover_sizes): (
        u64,
        u64,
        usize,
        u64,
        &[u64],
    ) = if smoke {
        (2_000, 50, 10, 2, &[8, 32])
    } else {
        (50_000, 500, 30, 5, &[16, 64, 256])
    };
    eprintln!(
        "bench_recovery: append {batched_events}/{synced_events} events, rounds {round_jobs} jobs x {round_reps} reps, recovery {recover_sizes:?}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let append = vec![
        bench_append(1, synced_events), // fsync every record: the safe extreme
        bench_append(16, batched_events),
        bench_append(256, batched_events),
    ];
    let rounds = bench_rounds(round_jobs, round_reps);
    let recovery: Vec<Value> = recover_sizes.iter().map(|&e| bench_recovery(e)).collect();

    let doc = Value::Map(vec![
        ("schema".into(), Value::Str("bench_recovery/v1".into())),
        ("smoke".into(), Value::Bool(smoke)),
        ("append".into(), Value::Seq(append)),
        ("rounds".into(), rounds),
        ("recovery".into(), Value::Seq(recovery)),
    ]);

    bench::common::write_json("bench_recovery", &out_path, &doc);
}
