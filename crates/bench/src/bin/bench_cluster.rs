//! Federation scale sweep: runs the same open workload through
//! [`cluster::simulate_cluster`] for cells ∈ {1, 2, 4, 8} and writes a
//! machine-readable `BENCH_cluster.json`.
//!
//! The sweep holds job density fixed — every cell count sees the *same*
//! resources and the same job stream per `(size, rep)` pair (common
//! random numbers) — so the only variable is how the resource pool is
//! sharded. Reported per cell count and workload size:
//!
//! * `p50_us` / `p95_us` — per-invocation solve latency pooled over reps
//!   (each sample is one federation round: the concurrent solve of every
//!   dirty cell, so sharding shows up as smaller models per solve),
//! * `p_late_mean` — mean missed-deadline proportion `P` over reps,
//! * routing/rebalancing counters (spills, migrations, rounds).
//!
//! Usage: `cargo run --release -p bench --bin bench_cluster -- [--smoke] [--out PATH]`
//!
//! `--smoke` shrinks the sweep for CI; timings are then meaningless but
//! the JSON shape is identical (checked by CI's key probe).

use cluster::{simulate_cluster, ClusterConfig, ClusterSimConfig, RebalanceConfig};
use desim::stats::sample_quantile;
use desim::RngStreams;
use mrcp::SimConfig;
use serde_json::Value;
use workload::{CellCount, Job, Resource, SyntheticConfig, SyntheticGenerator};

/// The sweep's fixed cluster and job shape: 16 resources (so even 8 cells
/// keep 2 nodes each and narrow jobs parallelize inside any cell — wider
/// jobs would penalize sharded cells on raw minimum execution time and
/// confound the latency comparison), driven as a sharp transient backlog
/// (λ well above the drain rate for the arrival window). The backlog is
/// what separates the cell counts: the single cell plans one large,
/// deadline-tight model per round while each of K cells plans ~1/K of it.
fn scenario(cells: u32, n_jobs: usize, rep: u64) -> (Vec<Resource>, Vec<Job>) {
    let cfg = SyntheticConfig {
        maps_per_job: (1, 4),
        reduces_per_job: (1, 2),
        e_max: 20,
        p_future_start: 0.0,
        s_max: 1,
        deadline_multiplier: 4.0,
        lambda: 2.0,
        resources: 16,
        map_capacity: 2,
        reduce_capacity: 2,
        cells: CellCount(cells),
        ..Default::default()
    };
    cfg.validate();
    // Seed by (size, rep) only: every cell count replays the same jobs.
    let rng = RngStreams::new(1000 * n_jobs as u64 + rep).stream("bench-cluster");
    let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n_jobs);
    (cfg.cluster(), jobs)
}

/// Sorted-sample quantile (nearest-rank); `q` in [0, 1].
/// Nearest-rank quantile via the workspace-shared helper; panics on an
/// empty sample set (a bench that produced no samples is a bug).
fn quantile(samples: &[u64], q: f64) -> u64 {
    sample_quantile(samples, q).expect("bench produced samples")
}

fn sweep_cell_count(cells: u32, sizes: &[usize], reps: u64) -> Value {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut lat_us: Vec<u64> = Vec::new();
        let mut p_late_sum = 0.0;
        let mut completed = 0u64;
        let mut invocations = 0u64;
        let mut rounds = 0u64;
        let mut spills = 0u64;
        let mut migrations = 0u64;
        for rep in 0..reps {
            let (resources, jobs) = scenario(cells, n, rep);
            let cfg = ClusterSimConfig {
                sim: SimConfig::default(),
                cluster: ClusterConfig {
                    cells: cells as usize,
                    rebalance: RebalanceConfig::default(),
                },
            };
            let (m, cm) = simulate_cluster(&cfg, &resources, jobs);
            lat_us.extend(cm.round_latencies_us.iter().copied());
            p_late_sum += m.p_late;
            completed += m.completed as u64;
            invocations += m.invocations;
            rounds += cm.rounds;
            spills += cm.spills;
            migrations += cm.migrations;
        }
        lat_us.sort_unstable();
        rows.push(Value::Map(vec![
            ("n_jobs".into(), Value::UInt(n as u64)),
            ("reps".into(), Value::UInt(reps)),
            ("p50_us".into(), Value::UInt(quantile(&lat_us, 0.5))),
            ("p95_us".into(), Value::UInt(quantile(&lat_us, 0.95))),
            ("p_late_mean".into(), Value::Float(p_late_sum / reps as f64)),
            ("completed".into(), Value::UInt(completed)),
            ("invocations".into(), Value::UInt(invocations)),
            ("rounds".into(), Value::UInt(rounds)),
            ("spills".into(), Value::UInt(spills)),
            ("migrations".into(), Value::UInt(migrations)),
        ]));
    }
    Value::Map(vec![
        ("cells".into(), Value::UInt(cells as u64)),
        ("per_size".into(), Value::Seq(rows)),
    ])
}

fn main() {
    let args = bench::common::parse_args("bench_cluster", "BENCH_cluster.json", false);
    let (smoke, out_path) = (args.smoke, args.out_path);

    let (cell_counts, sizes, reps): (&[u32], &[usize], u64) = if smoke {
        (&[1, 2], &[10], 2)
    } else {
        (&[1, 2, 4, 8], &[20, 40, 80], 5)
    };
    eprintln!(
        "bench_cluster: cells {cell_counts:?}, sizes {sizes:?}, {reps} reps{}",
        if smoke { " (smoke)" } else { "" }
    );

    let sweep: Vec<Value> = cell_counts
        .iter()
        .map(|&k| sweep_cell_count(k, sizes, reps))
        .collect();
    let doc = Value::Map(vec![
        ("schema".into(), Value::Str("bench_cluster/v1".into())),
        ("smoke".into(), Value::Bool(smoke)),
        ("resources".into(), Value::UInt(16)),
        ("sweep".into(), Value::Seq(sweep)),
    ]);

    bench::common::write_json("bench_cluster", &out_path, &doc);
}
