//! Closed-loop ingest ramp: drive the service layer's ramp harness at a
//! rising offered rate, once with batched ingest and once with batch
//! size 1 (call-per-arrival), and write a machine-readable
//! `BENCH_service.json` with the knee of each mode's P-vs-rate curve.
//!
//! The manager pays a per-round scheduling overhead (`PerTask`: a fixed
//! base plus a marginal per-task cost — the paper's observation that model
//! generation and solve time are dominated by fixed per-round work).
//! Batching amortizes the base across a burst, so the batched mode's knee
//! sits well above the call-per-arrival knee on the same workload; the
//! headline `max_sustained_rps` and `speedup_vs_batch1` quantify it.
//!
//! Usage:
//!   cargo run --release -p bench --bin bench_service -- \
//!       [--smoke] [--out PATH] [--spec PATH]
//!
//! `--spec` points at a ramp spec (see `crates/bench/specs/
//! service_ramp.toml`, which is also the embedded default). `--smoke`
//! shrinks the ramp to two rungs for CI; the JSON shape is identical.

use mrcp::{IngestConfig, MrcpConfig, MrcpRm, OverheadModel, SimConfig, SolveBudget};
use serde_json::Value;
use service::ramp::{ramp, RampConfig, RampReport, RungReport};
use workload::{parse_service_spec, ServiceSpec};

use desim::SimTime;

/// The default spec, committed alongside the benches so a run is
/// reproducible from the repository alone.
const DEFAULT_SPEC: &str = include_str!("../../specs/service_ramp.toml");

/// Per-solve scheduling overhead: four seconds of fixed work plus 50 ms
/// per task in the model, charged for admission probes and replan rounds
/// alike. The fixed base is what batching amortizes: call-per-arrival
/// ingestion pays it once per job, a coalesced flush once per burst.
const ROUND_BASE: SimTime = SimTime::from_secs(4);
const ROUND_PER_TASK: SimTime = SimTime::from_millis(50);

/// Deterministic manager: one portfolio worker, node-capped, no
/// wall-clock budget — reruns of the bench reproduce the same JSON.
fn sim_config(ingest: Option<IngestConfig>) -> SimConfig {
    SimConfig {
        manager: MrcpConfig {
            budget: SolveBudget {
                node_limit: 2_000,
                fail_limit: 2_000,
                time_limit_ms: None,
                adaptive: None,
                warm_start: true,
                workers: 1,
                ..SolveBudget::default()
            },
            ..Default::default()
        },
        overhead: OverheadModel::PerTask {
            base: ROUND_BASE,
            per_task: ROUND_PER_TASK,
        },
        ingest,
        ..Default::default()
    }
}

fn ramp_config(spec: &ServiceSpec, smoke: bool) -> RampConfig {
    let k = &spec.ramp;
    let mut cfg = RampConfig {
        initial_rps: k.initial_rps,
        increment_rps: k.increment_rps,
        max_rps: k.max_rps,
        jobs_per_rung: k.jobs_per_rung,
        slo_p_late: k.slo_p_late,
        slo_shed_frac: k.slo_shed_frac,
        slo_p99_planned_us: k.slo_p99_planned_ms * 1000,
        seed: k.seed,
    };
    if smoke {
        // Two rungs, few jobs: shape-only, finishes in seconds.
        cfg.increment_rps = cfg.initial_rps;
        cfg.max_rps = cfg.initial_rps * 2.0;
        cfg.jobs_per_rung = cfg.jobs_per_rung.min(8);
    }
    cfg
}

fn run_mode(spec: &ServiceSpec, smoke: bool, ingest: Option<IngestConfig>) -> RampReport {
    let sim = sim_config(ingest);
    let cfg = ramp_config(spec, smoke);
    let resources = spec.workload.cluster();
    ramp(&spec.workload, &sim, &resources, &cfg, |mc| {
        MrcpRm::new(mc, resources.clone())
    })
}

fn rung_row(r: &RungReport) -> Value {
    Value::Map(vec![
        ("rps".into(), Value::Float(r.rps)),
        ("arrived".into(), Value::UInt(r.arrived)),
        ("admitted".into(), Value::UInt(r.admitted)),
        ("refused".into(), Value::UInt(r.refused)),
        ("shed_frac".into(), Value::Float(r.shed_frac)),
        ("p_late".into(), Value::Float(r.p_late)),
        (
            "mean_turnaround_s".into(),
            Value::Float(r.mean_turnaround_s),
        ),
        ("batches".into(), Value::UInt(r.batches)),
        ("max_batch".into(), Value::UInt(r.max_batch as u64)),
        (
            "p50_ingest_to_admitted_us".into(),
            Value::UInt(r.p50_ingest_to_admitted_us),
        ),
        (
            "p95_ingest_to_admitted_us".into(),
            Value::UInt(r.p95_ingest_to_admitted_us),
        ),
        (
            "p99_ingest_to_admitted_us".into(),
            Value::UInt(r.p99_ingest_to_admitted_us),
        ),
        (
            "p50_ingest_to_planned_us".into(),
            Value::UInt(r.p50_ingest_to_planned_us),
        ),
        (
            "p95_ingest_to_planned_us".into(),
            Value::UInt(r.p95_ingest_to_planned_us),
        ),
        (
            "p99_ingest_to_planned_us".into(),
            Value::UInt(r.p99_ingest_to_planned_us),
        ),
        ("invocations".into(), Value::UInt(r.invocations)),
        ("end_time_s".into(), Value::Float(r.end_time_s)),
        ("sustained".into(), Value::Bool(r.sustained)),
    ])
}

fn mode_doc(name: &str, max_batch: usize, report: &RampReport) -> Value {
    Value::Map(vec![
        ("mode".into(), Value::Str(name.into())),
        ("max_batch".into(), Value::UInt(max_batch as u64)),
        (
            "rungs".into(),
            Value::Seq(report.rungs.iter().map(rung_row).collect()),
        ),
        (
            "max_sustained_rps".into(),
            report
                .max_sustained_rps
                .map(Value::Float)
                .unwrap_or(Value::Null),
        ),
        (
            "knee_rps".into(),
            report.knee_rps.map(Value::Float).unwrap_or(Value::Null),
        ),
    ])
}

fn main() {
    let args = bench::common::parse_args("bench_service", "BENCH_service.json", true);
    let (smoke, out_path, spec_path) = (args.smoke, args.out_path, args.spec_path);
    let spec_text = match &spec_path {
        Some(p) => std::fs::read_to_string(p).expect("read spec file"),
        None => DEFAULT_SPEC.to_string(),
    };
    let spec = parse_service_spec(&spec_text).expect("valid ramp spec");

    let batched_ingest = IngestConfig {
        max_batch: spec.service.max_batch,
        max_linger: SimTime::from_millis(spec.service.max_linger_ms),
    };
    let batch1_ingest = IngestConfig {
        max_batch: 1,
        max_linger: SimTime::ZERO,
    };

    eprintln!(
        "bench_service: ramp {}..{} rps step {}, {} jobs/rung, batch {} linger {}{}",
        spec.ramp.initial_rps,
        spec.ramp.max_rps,
        spec.ramp.increment_rps,
        ramp_config(&spec, smoke).jobs_per_rung,
        spec.service.max_batch,
        SimTime::from_millis(spec.service.max_linger_ms),
        if smoke { " (smoke)" } else { "" }
    );

    eprintln!("bench_service: ramping batched mode...");
    let batched = run_mode(&spec, smoke, Some(batched_ingest));
    eprintln!(
        "bench_service: batched knee at {:?} rps ({} rungs)",
        batched.max_sustained_rps,
        batched.rungs.len()
    );
    eprintln!("bench_service: ramping batch-1 mode...");
    let batch1 = run_mode(&spec, smoke, Some(batch1_ingest));
    eprintln!(
        "bench_service: batch-1 knee at {:?} rps ({} rungs)",
        batch1.max_sustained_rps,
        batch1.rungs.len()
    );

    let speedup = match (batched.max_sustained_rps, batch1.max_sustained_rps) {
        (Some(b), Some(s)) if s > 0.0 => Some(b / s),
        _ => None,
    };
    if let Some(s) = speedup {
        eprintln!("bench_service: batched sustains {s:.2}x the batch-1 rate at equal SLOs");
    }

    let doc = Value::Map(vec![
        ("schema".into(), Value::Str("bench_service/v1".into())),
        ("smoke".into(), Value::Bool(smoke)),
        (
            "spec".into(),
            Value::Map(vec![
                (
                    "max_batch".into(),
                    Value::UInt(spec.service.max_batch as u64),
                ),
                (
                    "max_linger_ms".into(),
                    Value::UInt(spec.service.max_linger_ms.max(0) as u64),
                ),
                (
                    "jobs_per_rung".into(),
                    Value::UInt(ramp_config(&spec, smoke).jobs_per_rung as u64),
                ),
                ("slo_p_late".into(), Value::Float(spec.ramp.slo_p_late)),
                (
                    "slo_shed_frac".into(),
                    Value::Float(spec.ramp.slo_shed_frac),
                ),
                (
                    "slo_p99_planned_ms".into(),
                    Value::UInt(spec.ramp.slo_p99_planned_ms),
                ),
                ("seed".into(), Value::UInt(spec.ramp.seed)),
                (
                    "resources".into(),
                    Value::UInt(u64::from(spec.workload.resources)),
                ),
            ]),
        ),
        (
            "modes".into(),
            Value::Seq(vec![
                mode_doc("batched", spec.service.max_batch, &batched),
                mode_doc("batch1", 1, &batch1),
            ]),
        ),
        (
            "max_sustained_rps".into(),
            batched
                .max_sustained_rps
                .map(Value::Float)
                .unwrap_or(Value::Null),
        ),
        (
            "speedup_vs_batch1".into(),
            speedup.map(Value::Float).unwrap_or(Value::Null),
        ),
    ]);

    bench::common::write_json("bench_service", &out_path, &doc);
}
