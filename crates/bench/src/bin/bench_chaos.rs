//! Chaos sweep: runs the same open workload through
//! [`cluster::simulate_cluster_chaos`] at increasing boundary fault
//! rates and writes a machine-readable `BENCH_chaos.json`.
//!
//! The sweep holds the workload fixed — every fault rate sees the *same*
//! resources and job stream per rep (common random numbers) — so the
//! only variable is how hostile the router→cell boundary is. Per fault
//! rate, reported over reps:
//!
//! * `p_late_mean` — mean missed-deadline proportion `P`,
//! * `goodput` — completed ÷ arrived (a silently lost job would show up
//!   here; the invariant checker aborts the bench on any violation),
//! * `retry_amplification` — delivery attempts per logical command,
//! * `failover_p50_ms` / `failover_p95_ms` — simulated crash→re-plan
//!   latency quantiles, pooled over reps (`null` when nothing failed
//!   over at that fault rate),
//! * crash/restore/reroute counters.
//!
//! Usage: `cargo run --release -p bench --bin bench_chaos -- [--smoke] [--out PATH]`
//!
//! `--smoke` shrinks the sweep for CI; the JSON shape is identical
//! (checked by CI's key probe).

use cluster::{
    simulate_cluster_chaos, ChaosConfig, ChaosSimConfig, ClusterConfig, ClusterSimConfig,
    HealthConfig, RebalanceConfig, RetryPolicy,
};
use desim::stats::sample_quantile;
use desim::{RngStreams, SimTime};
use mrcp::SimConfig;
use serde_json::Value;
use workload::{CellCount, Job, Resource, SyntheticConfig, SyntheticGenerator};

/// Fixed federation shape for the sweep: 12 resources in 3 cells driven
/// by a sharp transient backlog (λ well above the drain rate), so cells
/// hold queued-but-unstarted work for most of the run — exactly the
/// state a crash must fail over. Deadlines are tight enough that the
/// fault injection, not raw capacity, is what moves `P`.
fn scenario(n_jobs: usize, rep: u64) -> (Vec<Resource>, Vec<Job>) {
    let cfg = SyntheticConfig {
        maps_per_job: (1, 4),
        reduces_per_job: (1, 2),
        e_max: 20,
        p_future_start: 0.0,
        s_max: 1,
        deadline_multiplier: 2.5,
        lambda: 2.0,
        resources: 12,
        map_capacity: 2,
        reduce_capacity: 2,
        cells: CellCount(3),
        ..Default::default()
    };
    cfg.validate();
    // Seed by rep only: every fault rate replays the same jobs.
    let rng = RngStreams::new(7_000 + rep).stream("bench-chaos");
    let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n_jobs);
    (cfg.cluster(), jobs)
}

/// The boundary at fault level `rate`: drops and duplicates at `rate`,
/// hangs at a fifth of it, and cell crashes (MTTF shrinking as the rate
/// grows) once the rate is nonzero. The MTTF is sized to the backlog's
/// drain time so each cell sees on the order of one crash per run.
fn chaos_at(rate: f64, rep: u64) -> ChaosConfig {
    ChaosConfig {
        drop_prob: rate,
        dup_prob: rate,
        hang_prob: rate / 5.0,
        mean_latency: (rate > 0.0).then(|| SimTime::from_millis(10)),
        call_deadline: SimTime::from_millis(200),
        cell_mttf: (rate > 0.0).then(|| SimTime::from_secs_f64(60.0 * (1.0 - rate).max(0.2))),
        cell_mttr: (rate > 0.0).then(|| SimTime::from_secs(20)),
        seed: 0xC4A0_5000 + rep,
    }
}

fn opt_uint(v: Option<u64>) -> Value {
    match v {
        Some(u) => Value::UInt(u),
        None => Value::Null,
    }
}

fn sweep_rate(rate: f64, n_jobs: usize, reps: u64) -> Value {
    let mut p_late_sum = 0.0;
    let mut arrived = 0u64;
    let mut completed = 0u64;
    let mut commands = 0u64;
    let mut attempts = 0u64;
    let mut crashes = 0u64;
    let mut restores = 0u64;
    let mut failovers = 0u64;
    let mut reroutes = 0u64;
    let mut escalations = 0u64;
    let mut failover_ms: Vec<u64> = Vec::new();
    for rep in 0..reps {
        let (resources, jobs) = scenario(n_jobs, rep);
        let cfg = ChaosSimConfig {
            base: ClusterSimConfig {
                sim: SimConfig::default(),
                cluster: ClusterConfig {
                    cells: 3,
                    rebalance: RebalanceConfig::default(),
                },
            },
            chaos: chaos_at(rate, rep),
            retry: RetryPolicy::default(),
            health: HealthConfig::default(),
        };
        let run = simulate_cluster_chaos(&cfg, &resources, jobs);
        assert!(
            run.violations.is_empty(),
            "invariants broken at rate {rate}: {:#?}",
            run.violations
        );
        let cm = run.federation.cluster_metrics();
        p_late_sum += run.metrics.p_late;
        arrived += run.metrics.arrived as u64;
        completed += run.metrics.completed as u64;
        commands += cm.rpc_commands;
        attempts += cm.rpc_attempts;
        crashes += cm.cell_crashes;
        restores += cm.cell_restores;
        failovers += cm.failovers;
        reroutes += cm.reroutes;
        escalations += cm.rpc_escalations;
        failover_ms.extend(cm.failover_latencies_ms.iter().copied());
    }
    failover_ms.sort_unstable();
    let amplification = if commands == 0 {
        1.0
    } else {
        attempts as f64 / commands as f64
    };
    Value::Map(vec![
        ("fault_rate".into(), Value::Float(rate)),
        ("n_jobs".into(), Value::UInt(n_jobs as u64)),
        ("reps".into(), Value::UInt(reps)),
        ("p_late_mean".into(), Value::Float(p_late_sum / reps as f64)),
        (
            "goodput".into(),
            Value::Float(if arrived == 0 {
                1.0
            } else {
                completed as f64 / arrived as f64
            }),
        ),
        ("retry_amplification".into(), Value::Float(amplification)),
        (
            "failover_p50_ms".into(),
            opt_uint(sample_quantile(&failover_ms, 0.5)),
        ),
        (
            "failover_p95_ms".into(),
            opt_uint(sample_quantile(&failover_ms, 0.95)),
        ),
        ("failovers".into(), Value::UInt(failovers)),
        ("cell_crashes".into(), Value::UInt(crashes)),
        ("cell_restores".into(), Value::UInt(restores)),
        ("reroutes".into(), Value::UInt(reroutes)),
        ("escalations".into(), Value::UInt(escalations)),
    ])
}

fn main() {
    let args = bench::common::parse_args("bench_chaos", "BENCH_chaos.json", false);
    let (smoke, out_path) = (args.smoke, args.out_path);

    let (rates, n_jobs, reps): (&[f64], usize, u64) = if smoke {
        (&[0.0, 0.2], 12, 2)
    } else {
        (&[0.0, 0.05, 0.1, 0.2, 0.3, 0.4], 40, 10)
    };
    eprintln!(
        "bench_chaos: rates {rates:?}, {n_jobs} jobs, {reps} reps{}",
        if smoke { " (smoke)" } else { "" }
    );

    let sweep: Vec<Value> = rates.iter().map(|&r| sweep_rate(r, n_jobs, reps)).collect();
    let doc = Value::Map(vec![
        ("schema".into(), Value::Str("bench_chaos/v1".into())),
        ("smoke".into(), Value::Bool(smoke)),
        ("cells".into(), Value::UInt(3)),
        ("resources".into(), Value::UInt(12)),
        ("sweep".into(), Value::Seq(sweep)),
    ]);

    bench::common::write_json("bench_chaos", &out_path, &doc);
}
