//! Live-scrape bench: runs a chaos federation with telemetry attached,
//! serves the registry over a [`telemetry::TelemetrySink`], scrapes
//! `/metrics` over HTTP *while the run is still going*, and then
//! reconciles the registry's counters against the run's end-of-run
//! structs ([`cluster::ClusterMetrics`], per-cell `ManagerStats`). Any
//! mismatch panics — the registry is wired at the exact code points
//! that mutate the end-of-run structs, so the two views must agree by
//! construction — and a machine-readable `BENCH_telemetry.json` records
//! the scrape latencies and the reconciliation table.
//!
//! The boundary runs hostile (drops, duplicates, hangs, latency) but
//! without cell crashes: a crash resets the rebuilt cell's in-memory
//! `ManagerStats` while the registry's counters are deliberately
//! cumulative across rehydration, so strict per-cell equality only
//! holds on a crash-free run. Crash-path telemetry is exercised by the
//! cluster integration tests instead.
//!
//! Usage: `cargo run --release -p bench --bin bench_telemetry -- [--smoke] [--out PATH]`

use cluster::{
    simulate_cluster_chaos_telemetry, ChaosConfig, ChaosSimConfig, ClusterConfig, ClusterSimConfig,
    HealthConfig, RebalanceConfig, RetryPolicy,
};
use desim::{RngStreams, SimTime};
use mrcp::SimConfig;
use serde_json::Value;
use std::time::{Duration, Instant};
use telemetry::{http_get, EventFilter, SinkConfig, Telemetry, TelemetrySink, DEFAULT_QUEUE_CAP};
use workload::{CellCount, Job, Resource, SyntheticConfig, SyntheticGenerator};

/// Same federation shape as `bench_chaos`: 12 resources in 3 cells
/// under a transient backlog, so there is real mid-run state to scrape.
fn scenario(n_jobs: usize) -> (Vec<Resource>, Vec<Job>) {
    let cfg = SyntheticConfig {
        maps_per_job: (1, 4),
        reduces_per_job: (1, 2),
        e_max: 20,
        p_future_start: 0.0,
        s_max: 1,
        deadline_multiplier: 2.5,
        lambda: 2.0,
        resources: 12,
        map_capacity: 2,
        reduce_capacity: 2,
        cells: CellCount(3),
        ..Default::default()
    };
    cfg.validate();
    let rng = RngStreams::new(7_700).stream("bench-telemetry");
    let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n_jobs);
    (cfg.cluster(), jobs)
}

/// Hostile boundary, crash-free (see module docs).
fn chaos() -> ChaosConfig {
    ChaosConfig {
        drop_prob: 0.15,
        dup_prob: 0.15,
        hang_prob: 0.03,
        mean_latency: Some(SimTime::from_millis(10)),
        call_deadline: SimTime::from_millis(200),
        cell_mttf: None,
        cell_mttr: None,
        seed: 0xC4A0_7700,
    }
}

fn reconcile_row(metric: &str, from_registry: u64, end_of_run: u64) -> Value {
    Value::Map(vec![
        ("metric".into(), Value::Str(metric.into())),
        ("telemetry".into(), Value::UInt(from_registry)),
        ("end_of_run".into(), Value::UInt(end_of_run)),
        ("match".into(), Value::Bool(from_registry == end_of_run)),
    ])
}

fn main() {
    let args = bench::common::parse_args("bench_telemetry", "BENCH_telemetry.json", false);
    let (smoke, out_path) = (args.smoke, args.out_path);
    let n_jobs = if smoke { 16 } else { 60 };
    eprintln!(
        "bench_telemetry: {n_jobs} jobs, 3 cells, hostile boundary{}",
        if smoke { " (smoke)" } else { "" }
    );

    let tel = Telemetry::new();
    let tail = tel.bus.subscribe(EventFilter::default(), DEFAULT_QUEUE_CAP);
    let sink =
        TelemetrySink::start(tel.registry.clone(), SinkConfig::loopback()).expect("bind sink");
    let addr = sink.local_addr().expect("http enabled");
    eprintln!("bench_telemetry: sink at http://{addr}/metrics");

    let (resources, jobs) = scenario(n_jobs);
    let cfg = ChaosSimConfig {
        base: ClusterSimConfig {
            sim: SimConfig::default(),
            cluster: ClusterConfig {
                cells: 3,
                rebalance: RebalanceConfig::default(),
            },
        },
        chaos: chaos(),
        retry: RetryPolicy::default(),
        health: HealthConfig::default(),
    };
    let run_tel = tel.clone();
    let run_resources = resources.clone();
    let worker = std::thread::spawn(move || {
        simulate_cluster_chaos_telemetry(&cfg, &run_resources, jobs, &run_tel)
    });

    // Scrape while the run is in flight. Every poll is a full HTTP
    // round trip against the live registry; a scrape that already sees
    // round counters is a genuine mid-run observation.
    let mut polls = 0u64;
    let mut mid_run_scrapes = 0u64;
    let mut scrape_us: Vec<u64> = Vec::new();
    let mut events = Vec::new();
    while !worker.is_finished() {
        let t0 = Instant::now();
        if let Ok(body) = http_get(addr, "/metrics") {
            scrape_us.push(t0.elapsed().as_micros() as u64);
            polls += 1;
            if body.contains("mrcp_rounds_total") {
                mid_run_scrapes += 1;
            }
        }
        events.extend(tail.drain());
        std::thread::sleep(Duration::from_millis(2));
    }
    let run = worker.join().expect("chaos run thread");
    events.extend(tail.drain());
    assert!(
        run.violations.is_empty(),
        "invariants broken: {:#?}",
        run.violations
    );

    // Final scrape: both encodings must serve and carry every layer.
    let prom = http_get(addr, "/metrics").expect("final /metrics scrape");
    let snap = http_get(addr, "/snapshot.json").expect("final /snapshot.json scrape");
    for key in [
        "mrcp_rounds_total",
        "mrcp_admission_total",
        "cpsolve_prop_runs_total",
        "cluster_rpc_attempts_total",
        "cluster_cell_health",
    ] {
        assert!(prom.contains(key), "final scrape lacks {key}");
        assert!(snap.contains(key), "final snapshot lacks {key}");
    }
    sink.shutdown();

    // Reconcile: the registry against the end-of-run structs.
    let reg = &tel.registry;
    let cm = run.federation.cluster_metrics();
    let c = |name: &str| reg.counter(name, &[]).get();
    let mut rows = vec![
        reconcile_row("cluster_rounds_total", c("cluster_rounds_total"), cm.rounds),
        reconcile_row(
            "cluster_rpc_commands_total",
            c("cluster_rpc_commands_total"),
            cm.rpc_commands,
        ),
        reconcile_row(
            "cluster_rpc_attempts_total",
            c("cluster_rpc_attempts_total"),
            cm.rpc_attempts,
        ),
        reconcile_row(
            "cluster_rpc_retries_total",
            c("cluster_rpc_retries_total"),
            cm.rpc_retries,
        ),
        reconcile_row(
            "cluster_rpc_drops_total",
            c("cluster_rpc_drops_total"),
            cm.rpc_drops,
        ),
        reconcile_row(
            "cluster_rpc_timeouts_total",
            c("cluster_rpc_timeouts_total"),
            cm.rpc_timeouts,
        ),
        reconcile_row(
            "cluster_rpc_dedup_hits_total",
            c("cluster_rpc_dedup_hits_total"),
            cm.rpc_dedup_hits,
        ),
        reconcile_row(
            "cluster_reroutes_total",
            c("cluster_reroutes_total"),
            cm.reroutes,
        ),
        reconcile_row("cluster_spills_total", c("cluster_spills_total"), cm.spills),
        reconcile_row(
            "cluster_migrations_total",
            c("cluster_migrations_total"),
            cm.migrations,
        ),
        reconcile_row(
            "cluster_cell_crashes_total",
            c("cluster_cell_crashes_total"),
            cm.cell_crashes,
        ),
        reconcile_row(
            "cluster_failovers_total",
            c("cluster_failovers_total"),
            cm.failovers,
        ),
    ];
    // Per-cell: one rung counter fires per solver invocation, so the
    // rung sum must equal the cell's `ManagerStats::invocations`.
    for (i, cell) in run.federation.cells().iter().enumerate() {
        let scoped = tel.scoped("cell", i);
        let rung_sum: u64 = ["split_cp", "full_cp", "lns", "greedy", "failed"]
            .iter()
            .map(|rung| {
                scoped
                    .registry
                    .counter("mrcp_rounds_total", &[("rung", rung)])
                    .get()
            })
            .sum();
        let stats = cell.rm.stats();
        rows.push(reconcile_row(
            &format!("mrcp_rounds_total{{cell=\"{i}\"}}"),
            rung_sum,
            stats.invocations,
        ));
        rows.push(reconcile_row(
            &format!("mrcp_warm_rounds_total{{cell=\"{i}\"}}"),
            scoped.registry.counter("mrcp_warm_rounds_total", &[]).get(),
            stats.warm_rounds,
        ));
    }
    let all_match = rows.iter().all(|r| {
        matches!(r, Value::Map(m) if m.iter().any(|(k, v)| k == "match" && *v == Value::Bool(true)))
    });
    assert!(
        all_match,
        "telemetry disagrees with end-of-run structs: {rows:#?}"
    );

    let dropped = tel.bus.dropped_events();
    assert_eq!(dropped, 0, "event bus dropped {dropped} events");

    scrape_us.sort_unstable();
    let q = |f: f64| -> Value {
        match desim::stats::sample_quantile(&scrape_us, f) {
            Some(u) => Value::UInt(u),
            None => Value::Null,
        }
    };
    let mut by_kind: Vec<(String, u64)> = Vec::new();
    for e in &events {
        let name = e.kind.as_str().to_string();
        match by_kind.iter_mut().find(|(k, _)| *k == name) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((name, 1)),
        }
    }
    by_kind.sort();
    eprintln!(
        "bench_telemetry: {polls} scrapes ({mid_run_scrapes} mid-run with data), \
         {} events tailed, all {} reconciliation rows match",
        events.len(),
        rows.len()
    );

    let doc = Value::Map(vec![
        ("schema".into(), Value::Str("bench_telemetry/v1".into())),
        ("smoke".into(), Value::Bool(smoke)),
        ("n_jobs".into(), Value::UInt(n_jobs as u64)),
        ("cells".into(), Value::UInt(3)),
        (
            "scrape".into(),
            Value::Map(vec![
                ("polls".into(), Value::UInt(polls)),
                ("mid_run_scrapes".into(), Value::UInt(mid_run_scrapes)),
                ("p50_us".into(), q(0.5)),
                ("p95_us".into(), q(0.95)),
                ("p99_us".into(), q(0.99)),
            ]),
        ),
        ("reconcile".into(), Value::Seq(rows)),
        ("all_match".into(), Value::Bool(all_match)),
        (
            "events".into(),
            Value::Map(vec![
                ("published".into(), Value::UInt(tel.bus.published())),
                ("tailed".into(), Value::UInt(events.len() as u64)),
                ("dropped".into(), Value::UInt(dropped)),
                (
                    "by_kind".into(),
                    Value::Map(
                        by_kind
                            .into_iter()
                            .map(|(k, n)| (k, Value::UInt(n)))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ]);

    bench::common::write_json("bench_telemetry", &out_path, &doc);
}
