//! The boilerplate every `bench_*` binary shares: CLI parsing for the
//! common `--smoke` / `--out PATH` flags (plus the optional
//! `--spec PATH` some bins take) and the validated JSON write at the
//! end of a run.

use serde_json::Value;

/// Parsed command line of a `bench_*` binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// `--smoke`: shrink the run for CI; the JSON shape stays identical.
    pub smoke: bool,
    /// `--out PATH`: where to write the JSON document.
    pub out_path: String,
    /// `--spec PATH`: an external spec file, for bins that accept one.
    pub spec_path: Option<String>,
}

/// Parse `std::env::args()` for a bench binary named `bin` whose default
/// output file is `default_out`. `accept_spec` additionally allows
/// `--spec PATH`. Unknown arguments panic with a usage hint, matching
/// the behavior every bin had before this was shared.
pub fn parse_args(bin: &str, default_out: &str, accept_spec: bool) -> BenchArgs {
    let mut parsed = BenchArgs {
        smoke: false,
        out_path: default_out.to_string(),
        spec_path: None,
    };
    let usage = if accept_spec {
        "--smoke / --out PATH / --spec PATH"
    } else {
        "--smoke / --out PATH"
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => parsed.smoke = true,
            "--out" => parsed.out_path = args.next().expect("--out needs a path"),
            "--spec" if accept_spec => {
                parsed.spec_path = Some(args.next().expect("--spec needs a path"));
            }
            other => panic!("{bin}: unknown argument {other:?} (use {usage})"),
        }
    }
    parsed
}

/// Serialize `doc`, self-check that it re-parses, and write it to
/// `out_path` with a trailing newline — the closing ritual of every
/// bench bin.
pub fn write_json(bin: &str, out_path: &str, doc: &Value) {
    let json = serde_json::to_string_pretty(doc).expect("serialization cannot fail");
    // Self-check: the file we are about to write must re-parse.
    let _: Value = serde_json::from_str(&json).expect("generated JSON re-parses");
    std::fs::write(out_path, json + "\n").expect("write output file");
    eprintln!("{bin}: wrote {out_path}");
}
