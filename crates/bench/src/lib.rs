//! Shared fixtures for the criterion benches.
//!
//! Three bench suites live in `benches/`:
//!
//! * `solver` — CP-solver microbenches (greedy warm start, propagation-heavy
//!   root solve, full branch-and-bound) across instance sizes,
//! * `figures` — one group per paper artifact, timing a single replication
//!   of each figure's midpoint so regressions in any experiment path are
//!   caught,
//! * `ablations` — the design-choice ablations called out in DESIGN.md §5:
//!   split scheduling/matchmaking on/off (§V.D), deferral on/off (§V.E),
//!   warm start on/off, job orderings, and the solver-budget anytime curve.

pub mod common;

use desim::RngStreams;
use workload::{Job, Resource, SyntheticConfig, SyntheticGenerator};

/// A synthetic scenario sized for benching: `n_jobs` Table 3-shaped jobs
/// (shrunk 5×) on a 6-node cluster at moderate contention.
pub fn bench_scenario(n_jobs: usize, seed: u64) -> (Vec<Resource>, Vec<Job>, SyntheticConfig) {
    let cfg = SyntheticConfig {
        maps_per_job: (1, 20),
        reduces_per_job: (1, 10),
        e_max: 50,
        resources: 6,
        deadline_multiplier: 2.0,
        ..Default::default()
    };
    let rng = RngStreams::new(seed).stream("bench");
    let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n_jobs);
    (cfg.cluster(), jobs, cfg)
}

/// A batch (all jobs available at t = 0) for closed-system solver benches.
pub fn batch_scenario(n_jobs: usize, seed: u64) -> (Vec<Resource>, Vec<Job>) {
    let cfg = SyntheticConfig {
        maps_per_job: (1, 10),
        reduces_per_job: (1, 5),
        e_max: 30,
        resources: 4,
        deadline_multiplier: 2.0,
        p_future_start: 0.0,
        lambda: 10.0, // essentially simultaneous arrivals
        ..Default::default()
    };
    let rng = RngStreams::new(seed).stream("bench-batch");
    let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n_jobs);
    (cfg.cluster(), jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        let (c1, j1, _) = bench_scenario(10, 3);
        let (c2, j2, _) = bench_scenario(10, 3);
        assert_eq!(c1, c2);
        assert_eq!(j1, j2);
        let (_, b1) = batch_scenario(5, 3);
        assert_eq!(b1.len(), 5);
    }
}
