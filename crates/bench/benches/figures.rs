//! One bench group per paper artifact.
//!
//! Each group times a single replication of the figure's midpoint
//! configuration at smoke scale, so any regression in the code path behind
//! a table or figure (generator → manager → solver → simulator → metrics)
//! shows up in `cargo bench`. Full regeneration with confidence intervals
//! is the `run_experiments` binary's job; these benches guard the cost.

use criterion::{criterion_group, criterion_main, Criterion};
use desim::RngStreams;
use std::hint::black_box;

use baselines::{run_slot_sim, MinEdfWc};
use mrcp::{simulate, SimConfig};
use workload::{FacebookConfig, FacebookGenerator, SyntheticConfig, SyntheticGenerator};

const SYNTH_JOBS: usize = 30;
const FB_JOBS: usize = 40;

fn synth_cfg() -> SyntheticConfig {
    // Table 3 defaults shrunk 10× (tasks and cluster alike).
    SyntheticConfig {
        maps_per_job: (1, 10),
        reduces_per_job: (1, 10),
        resources: 5,
        ..Default::default()
    }
}

fn run_synth(cfg: &SyntheticConfig) -> f64 {
    let rng = RngStreams::new(1).stream("bench");
    let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(SYNTH_JOBS);
    let m = simulate(&SimConfig::default(), &cfg.cluster(), jobs);
    m.p_late
}

fn fb_cfg() -> FacebookConfig {
    FacebookConfig {
        lambda: 3e-4,
        task_scale: 0.02,
        resources: 2,
        ..Default::default()
    }
}

fn bench_fig2_fig3(c: &mut Criterion) {
    let cfg = fb_cfg();
    let mut g = c.benchmark_group("fig2_fig3_facebook");
    g.bench_function("mrcp_rm", |b| {
        b.iter(|| {
            let rng = RngStreams::new(2).stream("bench");
            let jobs = FacebookGenerator::new(cfg.clone(), rng).take_jobs(FB_JOBS);
            black_box(simulate(&SimConfig::default(), &cfg.cluster(), jobs))
        })
    });
    g.bench_function("minedf_wc", |b| {
        b.iter(|| {
            let rng = RngStreams::new(2).stream("bench");
            let jobs = FacebookGenerator::new(cfg.clone(), rng).take_jobs(FB_JOBS);
            black_box(run_slot_sim(
                cfg.total_map_slots(),
                cfg.total_reduce_slots(),
                jobs,
                &mut MinEdfWc::default(),
                0,
            ))
        })
    });
    g.finish();
}

macro_rules! synth_fig {
    ($fn_name:ident, $group:literal, $($label:literal => $cfg:expr),+ $(,)?) => {
        fn $fn_name(c: &mut Criterion) {
            let mut g = c.benchmark_group($group);
                    $(
                g.bench_function($label, |b| {
                    let cfg: SyntheticConfig = $cfg;
                    b.iter(|| black_box(run_synth(&cfg)))
                });
            )+
            g.finish();
        }
    };
}

synth_fig!(bench_fig4, "fig4_exec_time",
    "e_max=10" => SyntheticConfig { e_max: 10, ..synth_cfg() },
    "e_max=100" => SyntheticConfig { e_max: 100, ..synth_cfg() },
);

synth_fig!(bench_fig5, "fig5_earliest_start",
    "s_max=10000" => SyntheticConfig { s_max: 10_000, ..synth_cfg() },
    "s_max=250000" => SyntheticConfig { s_max: 250_000, ..synth_cfg() },
);

synth_fig!(bench_fig6, "fig6_future_start_p",
    "p=0.1" => SyntheticConfig { p_future_start: 0.1, ..synth_cfg() },
    "p=0.9" => SyntheticConfig { p_future_start: 0.9, ..synth_cfg() },
);

synth_fig!(bench_fig7, "fig7_deadline",
    "d_M=2" => SyntheticConfig { deadline_multiplier: 2.0, ..synth_cfg() },
    "d_M=10" => SyntheticConfig { deadline_multiplier: 10.0, ..synth_cfg() },
);

synth_fig!(bench_fig8, "fig8_arrival_rate",
    "lambda=0.001" => SyntheticConfig { lambda: 0.001, ..synth_cfg() },
    "lambda=0.02" => SyntheticConfig { lambda: 0.02, ..synth_cfg() },
);

synth_fig!(bench_fig9, "fig9_resources",
    "m=3" => SyntheticConfig { resources: 3, ..synth_cfg() },
    "m=10" => SyntheticConfig { resources: 10, ..synth_cfg() },
);

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets =
    bench_fig2_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9

}
criterion_main!(benches);
