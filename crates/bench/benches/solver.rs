//! CP-solver microbenches: how expensive are the pieces the paper's `O`
//! metric is made of?

use bench::batch_scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrcp::closed::solve_closed;
use mrcp::modelmap::{build_model, JobInput, TaskInput};
use mrcp::JobOrdering;
use std::hint::black_box;

fn inputs(jobs: &[workload::Job]) -> Vec<JobInput<'_>> {
    jobs.iter()
        .map(|job| JobInput {
            job,
            release: job.earliest_start,
            priority: job.deadline.as_millis(),
            tasks: job
                .tasks()
                .map(|t| TaskInput {
                    id: t.id,
                    kind: t.kind,
                    exec_time: t.exec_time,
                    req: t.req,
                    pinned: None,
                })
                .collect(),
        })
        .collect()
}

/// Model construction cost (the paper's "model generation" component).
fn bench_model_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_build");
    for n in [5usize, 15, 30] {
        let (cluster, jobs) = batch_scenario(n, 1);
        let ji = inputs(&jobs);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| build_model(black_box(&cluster), black_box(&ji)).unwrap())
        });
    }
    g.finish();
}

/// Greedy EDF warm start (the incumbent generator).
fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_warm_start");
    for n in [5usize, 15, 30] {
        let (cluster, jobs) = batch_scenario(n, 2);
        let ji = inputs(&jobs);
        let mm = build_model(&cluster, &ji).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| cpsolve::greedy::greedy_edf(black_box(&mm.model)).unwrap())
        });
    }
    g.finish();
}

/// End-to-end budgeted solve (split path), the dominant part of `O`.
fn bench_batch_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_solve_split");
    for n in [5usize, 15, 30] {
        let (cluster, jobs) = batch_scenario(n, 3);
        let params = cpsolve::search::SolveParams {
            node_limit: 2_000,
            fail_limit: 2_000,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                solve_closed(
                    black_box(&cluster),
                    black_box(&jobs),
                    JobOrdering::Edf,
                    &params,
                    true,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_model_build, bench_greedy, bench_batch_solve
}
criterion_main!(benches);
