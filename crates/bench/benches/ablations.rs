//! Design-choice ablations (DESIGN.md §5).
//!
//! * **split** — §V.D separated scheduling/matchmaking vs the monolithic
//!   multi-resource CP model (the paper saw ~4× on its 50-resource batch),
//! * **defer** — §V.E far-future-job deferral on vs off,
//! * **warm start** — greedy incumbent on vs off,
//! * **ordering** — job-id vs EDF vs least-laxity search priorities,
//! * **budget** — the anytime curve: solve quality/cost vs node budget.

use bench::{batch_scenario, bench_scenario};
use cpsolve::search::{solve, SolveParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrcp::closed::solve_closed;
use mrcp::defer::DeferPolicy;
use mrcp::modelmap::{build_model, JobInput, TaskInput};
use mrcp::{simulate, JobOrdering, SimConfig};
use std::hint::black_box;

const N_JOBS: usize = 25;

/// §V.D: split vs monolithic solve on the same batch.
fn bench_split_vs_full(c: &mut Criterion) {
    let (cluster, jobs) = batch_scenario(12, 11);
    let params = SolveParams {
        node_limit: 2_000,
        fail_limit: 2_000,
        ..Default::default()
    };
    let mut g = c.benchmark_group("ablation_split_vs_full");
    g.bench_function("split(V.D)", |b| {
        b.iter(|| {
            solve_closed(black_box(&cluster), &jobs, JobOrdering::Edf, &params, true).unwrap()
        })
    });
    g.bench_function("monolithic", |b| {
        b.iter(|| {
            solve_closed(black_box(&cluster), &jobs, JobOrdering::Edf, &params, false).unwrap()
        })
    });
    g.finish();
}

/// §V.E: deferral on vs off over an open stream with future starts.
fn bench_defer(c: &mut Criterion) {
    let (cluster, jobs, _) = bench_scenario(N_JOBS, 12);
    let mut g = c.benchmark_group("ablation_defer");
    for (label, policy) in [
        ("on(V.E)", DeferPolicy::default()),
        ("off", DeferPolicy::disabled()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = SimConfig::default();
                cfg.manager.defer = policy;
                black_box(simulate(&cfg, &cluster, jobs.clone()))
            })
        });
    }
    g.finish();
}

/// Greedy warm start on vs off (pure solver, batch model).
fn bench_warm_start(c: &mut Criterion) {
    let (cluster, jobs) = batch_scenario(10, 13);
    let inputs: Vec<JobInput<'_>> = jobs
        .iter()
        .map(|job| JobInput {
            job,
            release: job.earliest_start,
            priority: job.deadline.as_millis(),
            tasks: job
                .tasks()
                .map(|t| TaskInput {
                    id: t.id,
                    kind: t.kind,
                    exec_time: t.exec_time,
                    req: t.req,
                    pinned: None,
                })
                .collect(),
        })
        .collect();
    let mm = build_model(&cluster, &inputs).unwrap();
    let mut g = c.benchmark_group("ablation_warm_start");
    for (label, warm) in [("on", true), ("off", false)] {
        let params = SolveParams {
            node_limit: 2_000,
            fail_limit: 2_000,
            warm_start: warm,
            ..Default::default()
        };
        g.bench_function(label, |b| b.iter(|| black_box(solve(&mm.model, &params))));
    }
    g.finish();
}

/// Job ordering strategies over the open stream.
fn bench_orderings(c: &mut Criterion) {
    let (cluster, jobs, _) = bench_scenario(N_JOBS, 14);
    let mut g = c.benchmark_group("ablation_ordering");
    for ordering in JobOrdering::all() {
        g.bench_function(ordering.name(), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::default();
                cfg.manager.ordering = ordering;
                black_box(simulate(&cfg, &cluster, jobs.clone()))
            })
        });
    }
    g.finish();
}

/// Anytime curve: batch solve cost vs node budget.
fn bench_budget_curve(c: &mut Criterion) {
    let (cluster, jobs) = batch_scenario(12, 15);
    let mut g = c.benchmark_group("ablation_budget");
    for nodes in [100u64, 1_000, 10_000] {
        let params = SolveParams {
            node_limit: nodes,
            fail_limit: nodes,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                solve_closed(black_box(&cluster), &jobs, JobOrdering::Edf, &params, true).unwrap()
            })
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets =
    bench_split_vs_full,
    bench_defer,
    bench_warm_start,
    bench_orderings,
    bench_budget_curve

}
criterion_main!(benches);
