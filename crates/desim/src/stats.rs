//! Output analysis: running moments, confidence intervals, replications.
//!
//! The paper's stopping rule (§VI.A): repeat each experiment until the 95%
//! confidence interval of the mean turnaround time `T` is within ±1% of the
//! average. [`Replications`] implements exactly that check over per-run
//! sample means produced by [`Welford`] accumulators.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance (Welford's algorithm).
///
/// ```
/// use desim::stats::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] { w.push(x); }
/// assert_eq!(w.mean(), 4.0);
/// assert_eq!(w.variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merge two accumulators (parallel reduction; Chan et al. update).
    pub fn merge(&self, other: &Welford) -> Welford {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        Welford { n, mean, m2 }
    }
}

/// Two-sided Student-t critical value for the given confidence level.
///
/// Table-driven for the common levels (0.95, 0.99) with linear interpolation
/// on degrees of freedom; falls back to the normal quantile above df = 120.
/// Accurate to ~1e-3, which is far tighter than simulation noise.
pub fn t_critical(df: u64, confidence: f64) -> f64 {
    // (df, t_{0.975}, t_{0.995})
    const TABLE: &[(u64, f64, f64)] = &[
        (1, 12.706, 63.657),
        (2, 4.303, 9.925),
        (3, 3.182, 5.841),
        (4, 2.776, 4.604),
        (5, 2.571, 4.032),
        (6, 2.447, 3.707),
        (7, 2.365, 3.499),
        (8, 2.306, 3.355),
        (9, 2.262, 3.250),
        (10, 2.228, 3.169),
        (12, 2.179, 3.055),
        (14, 2.145, 2.977),
        (16, 2.120, 2.921),
        (18, 2.101, 2.878),
        (20, 2.086, 2.845),
        (25, 2.060, 2.787),
        (30, 2.042, 2.750),
        (40, 2.021, 2.704),
        (60, 2.000, 2.660),
        (80, 1.990, 2.639),
        (100, 1.984, 2.626),
        (120, 1.980, 2.617),
    ];
    let pick = |lo: &(u64, f64, f64)| -> f64 {
        if confidence >= 0.99 {
            lo.2
        } else {
            lo.1
        }
    };
    assert!(
        (0.5..1.0).contains(&confidence),
        "confidence must be in [0.5, 1), got {confidence}"
    );
    if df == 0 {
        return f64::INFINITY;
    }
    if df >= 120 {
        return if confidence >= 0.99 { 2.576 } else { 1.960 };
    }
    let mut prev = &TABLE[0];
    for row in TABLE {
        if row.0 == df {
            return pick(row);
        }
        if row.0 > df {
            // linear interpolation between prev and row on df
            let f = (df - prev.0) as f64 / (row.0 - prev.0) as f64;
            return pick(prev) + f * (pick(row) - pick(prev));
        }
        prev = row;
    }
    pick(prev)
}

/// A mean with its half-width confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiMean {
    /// Point estimate (mean over replications).
    pub mean: f64,
    /// Half-width of the confidence interval.
    pub half_width: f64,
    /// Number of replications behind the estimate.
    pub n: u64,
}

impl CiMean {
    /// Relative half-width (half_width / |mean|); infinite when the mean is 0.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            if self.half_width == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Aggregates one scalar metric over independent replications and reports a
/// Student-t confidence interval, implementing the paper's stopping rule.
///
/// ```
/// use desim::stats::Replications;
/// let mut t = Replications::new(0.95);
/// for run in [101.0, 99.5, 100.2, 99.8] { t.push(run); }
/// let est = t.estimate();
/// assert!((est.mean - 100.125).abs() < 1e-9);
/// assert!(est.half_width > 0.0);
/// // the paper's rule: repeat until the CI is within a target fraction
/// // of the mean (±1% in the paper; this noisy 4-run demo reaches ±2%)
/// assert!(t.converged(0.02, 4));
/// assert!(!t.converged(0.001, 4));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Replications {
    acc: Welford,
    confidence: f64,
}

impl Replications {
    /// New aggregator at the given confidence level (e.g. 0.95).
    pub fn new(confidence: f64) -> Self {
        Replications {
            acc: Welford::new(),
            confidence,
        }
    }

    /// Record the result of one replication.
    pub fn push(&mut self, value: f64) {
        self.acc.push(value);
    }

    /// Number of replications recorded.
    pub fn count(&self) -> u64 {
        self.acc.count()
    }

    /// Current mean and confidence half-width.
    pub fn estimate(&self) -> CiMean {
        let n = self.acc.count();
        let hw = if n < 2 {
            f64::INFINITY
        } else {
            t_critical(n - 1, self.confidence) * self.acc.std_err()
        };
        CiMean {
            mean: self.acc.mean(),
            half_width: hw,
            n,
        }
    }

    /// True once the relative half-width is at or below `target` (e.g. 0.01
    /// for the paper's ±1%), with at least `min_reps` replications.
    pub fn converged(&self, target: f64, min_reps: u64) -> bool {
        self.acc.count() >= min_reps.max(2) && self.estimate().relative_half_width() <= target
    }
}

/// Sample store with exact quantiles — for per-job distributions (e.g. the
/// turnaround tail) where the paper's mean-only reporting hides latency
/// outliers. O(n) memory; sorting is deferred and cached.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tally {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The `q`-quantile (nearest-rank; `q ∈ [0, 1]`), or `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&mut self) -> Option<f64> {
        self.quantile(1.0)
    }
}

/// Nearest-rank quantile over an unsorted sample set, `q` clamped to
/// [0, 1]; `None` when empty. Shared by the federation's round/failover
/// latency metrics and the bench harnesses so every quantile printed by
/// this workspace means the same thing.
pub fn sample_quantile(samples: &[u64], q: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    Some(sorted[idx])
}

/// HDR-style log-bucketed latency histogram: fixed memory regardless of
/// sample count, with bounded relative error on quantiles. Buckets are
/// base-2 magnitudes split into `SUBBUCKETS` linear sub-buckets, giving a
/// worst-case quantile error of 1/SUBBUCKETS ≈ 3% — plenty for latency
/// reporting, and unlike [`Tally`] it never grows under a sustained load
/// test recording one sample per request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `counts[m * SUBBUCKETS + s]` = samples whose magnitude is `m` and
    /// sub-bucket `s`.
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
}

/// Linear sub-buckets per power-of-two magnitude (relative error 1/32).
const SUBBUCKETS: usize = 32;
/// Magnitudes tracked: values up to 2^40 (≈ 12.7 days in microseconds).
const MAGNITUDES: usize = 41;

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: vec![0; MAGNITUDES * SUBBUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        // Magnitude = floor(log2(v)) for v >= SUBBUCKETS; small values get
        // exact buckets (one per integer) in the first magnitudes.
        let v = value.max(1);
        let mag = (63 - v.leading_zeros()) as usize;
        if mag < SUBBUCKETS.trailing_zeros() as usize {
            // v < SUBBUCKETS: exact.
            return v as usize;
        }
        let sub = ((v >> (mag - SUBBUCKETS.trailing_zeros() as usize)) as usize) - SUBBUCKETS;
        let idx = (mag - SUBBUCKETS.trailing_zeros() as usize + 1) * SUBBUCKETS + sub;
        idx.min(MAGNITUDES * SUBBUCKETS - 1)
    }

    /// Lower edge of the bucket holding `value` — the value a quantile
    /// query reports for samples in that bucket.
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUBBUCKETS {
            return idx as u64;
        }
        let mag = idx / SUBBUCKETS - 1 + SUBBUCKETS.trailing_zeros() as usize;
        let sub = (idx % SUBBUCKETS) as u64;
        (SUBBUCKETS as u64 + sub) << (mag - SUBBUCKETS.trailing_zeros() as usize)
    }

    /// Record one sample (e.g. a latency in microseconds).
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// The `q`-quantile (nearest-rank over buckets; `q` clamped to [0,1]),
    /// accurate to the bucket width (≤ ~3% relative error). `None` when
    /// empty. The extremes are exact: q=0 reports `min`, q=1 reports `max`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn absorb(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch-means analysis for one long steady-state run: the autocorrelated
/// within-run sequence is split into `k` contiguous batches whose means are
/// approximately independent, giving a defensible CI without independent
/// replications. Complements [`Replications`] (which the paper's protocol
/// uses) for exploratory single-run studies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: usize,
    current: Welford,
    batch_means: Replications,
}

impl BatchMeans {
    /// Analyzer with `batch_size` observations per batch at the given
    /// confidence level.
    pub fn new(batch_size: usize, confidence: f64) -> Self {
        assert!(batch_size >= 1);
        BatchMeans {
            batch_size,
            current: Welford::new(),
            batch_means: Replications::new(confidence),
        }
    }

    /// Record one observation; closes a batch every `batch_size` pushes.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() as usize == self.batch_size {
            self.batch_means.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Completed batches.
    pub fn batches(&self) -> u64 {
        self.batch_means.count()
    }

    /// CI over completed batch means (the partial batch is excluded).
    pub fn estimate(&self) -> CiMean {
        self.batch_means.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        let merged = a.merge(&b);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-10);
        assert!((merged.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let e = Welford::new();
        let m1 = a.merge(&e);
        let m2 = e.merge(&a);
        assert_eq!(m1.count(), 2);
        assert!((m1.mean() - 2.0).abs() < 1e-12);
        assert!((m2.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn t_critical_known_values() {
        assert!((t_critical(5, 0.95) - 2.571).abs() < 1e-9);
        assert!((t_critical(10, 0.99) - 3.169).abs() < 1e-9);
        assert!((t_critical(1_000, 0.95) - 1.960).abs() < 1e-9);
        // interpolated: df=11 between 10 and 12
        let t11 = t_critical(11, 0.95);
        assert!(t11 < t_critical(10, 0.95) && t11 > t_critical(12, 0.95));
        assert!(t_critical(0, 0.95).is_infinite());
    }

    #[test]
    fn replications_converge_on_constant_data() {
        let mut r = Replications::new(0.95);
        assert!(!r.converged(0.01, 2));
        r.push(10.0);
        assert!(!r.converged(0.01, 2));
        r.push(10.0);
        r.push(10.0);
        assert!(r.converged(0.01, 2));
        let e = r.estimate();
        assert_eq!(e.mean, 10.0);
        assert_eq!(e.half_width, 0.0);
    }

    #[test]
    fn replications_wide_on_noisy_data() {
        let mut r = Replications::new(0.95);
        r.push(1.0);
        r.push(100.0);
        assert!(!r.converged(0.01, 2));
        assert!(r.estimate().relative_half_width() > 1.0);
    }

    #[test]
    fn tally_quantiles_nearest_rank() {
        let mut t = Tally::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            t.push(x);
        }
        assert_eq!(t.count(), 5);
        assert!((t.mean() - 3.0).abs() < 1e-12);
        assert_eq!(t.quantile(0.0), Some(1.0));
        assert_eq!(t.quantile(0.5), Some(3.0));
        assert_eq!(t.quantile(0.9), Some(5.0));
        assert_eq!(t.max(), Some(5.0));
        // push after sort invalidates cache correctly
        t.push(0.5);
        assert_eq!(t.quantile(0.0), Some(0.5));
        assert_eq!(Tally::new().quantile(0.5), None);
    }

    #[test]
    fn batch_means_on_iid_data_tightens() {
        let mut bm = BatchMeans::new(10, 0.95);
        // Deterministic "noise" around 100.
        for i in 0..200 {
            bm.push(100.0 + ((i * 37) % 11) as f64 - 5.0);
        }
        assert_eq!(bm.batches(), 20);
        let e = bm.estimate();
        assert!((e.mean - 100.0).abs() < 1.0, "mean {}", e.mean);
        assert!(e.half_width < 1.0, "hw {}", e.half_width);
    }

    #[test]
    fn batch_means_excludes_partial_batch() {
        let mut bm = BatchMeans::new(10, 0.95);
        for _ in 0..25 {
            bm.push(1.0);
        }
        assert_eq!(bm.batches(), 2, "5 trailing samples stay unbatched");
    }

    #[test]
    fn sample_quantile_nearest_rank() {
        assert_eq!(sample_quantile(&[], 0.5), None);
        assert_eq!(sample_quantile(&[7], 0.0), Some(7));
        assert_eq!(sample_quantile(&[7], 1.0), Some(7));
        let xs = [50, 10, 40, 20, 30];
        assert_eq!(sample_quantile(&xs, 0.0), Some(10));
        assert_eq!(sample_quantile(&xs, 0.5), Some(30));
        assert_eq!(sample_quantile(&xs, 1.0), Some(50));
        // q outside [0,1] clamps instead of panicking
        assert_eq!(sample_quantile(&xs, 2.0), Some(50));
        assert_eq!(sample_quantile(&xs, -1.0), Some(10));
    }

    #[test]
    fn log_histogram_small_values_exact() {
        let mut h = LogHistogram::new();
        for v in [5u64, 1, 3, 2, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(5));
        // Values < 32 land in exact buckets, so quantiles are exact.
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(1.0), Some(5));
        assert_eq!(LogHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn log_histogram_quantile_relative_error_bounded() {
        let mut h = LogHistogram::new();
        // Deterministic spread over several magnitudes.
        let xs: Vec<u64> = (1..=2000).map(|i| (i * i * 37) % 900_000 + 1).collect();
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let exact = sorted[((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1];
            let approx = h.quantile(q).unwrap();
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel <= 1.0 / 32.0 + 1e-9,
                "q={q}: approx {approx} vs exact {exact} (rel {rel})"
            );
            assert!(approx <= exact, "bucket floor never overshoots");
        }
    }

    #[test]
    fn log_histogram_absorb_matches_combined() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..500u64 {
            let v = i * 97 + 3;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.absorb(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn log_histogram_handles_extremes() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn ci_mean_relative_half_width_edge_cases() {
        let z = CiMean {
            mean: 0.0,
            half_width: 0.0,
            n: 5,
        };
        assert_eq!(z.relative_half_width(), 0.0);
        let inf = CiMean {
            mean: 0.0,
            half_width: 1.0,
            n: 5,
        };
        assert!(inf.relative_half_width().is_infinite());
    }
}
