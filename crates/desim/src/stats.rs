//! Output analysis: running moments, confidence intervals, replications.
//!
//! The paper's stopping rule (§VI.A): repeat each experiment until the 95%
//! confidence interval of the mean turnaround time `T` is within ±1% of the
//! average. [`Replications`] implements exactly that check over per-run
//! sample means produced by [`Welford`] accumulators.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance (Welford's algorithm).
///
/// ```
/// use desim::stats::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] { w.push(x); }
/// assert_eq!(w.mean(), 4.0);
/// assert_eq!(w.variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merge two accumulators (parallel reduction; Chan et al. update).
    pub fn merge(&self, other: &Welford) -> Welford {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        Welford { n, mean, m2 }
    }
}

/// Two-sided Student-t critical value for the given confidence level.
///
/// Table-driven for the common levels (0.95, 0.99) with linear interpolation
/// on degrees of freedom; falls back to the normal quantile above df = 120.
/// Accurate to ~1e-3, which is far tighter than simulation noise.
pub fn t_critical(df: u64, confidence: f64) -> f64 {
    // (df, t_{0.975}, t_{0.995})
    const TABLE: &[(u64, f64, f64)] = &[
        (1, 12.706, 63.657),
        (2, 4.303, 9.925),
        (3, 3.182, 5.841),
        (4, 2.776, 4.604),
        (5, 2.571, 4.032),
        (6, 2.447, 3.707),
        (7, 2.365, 3.499),
        (8, 2.306, 3.355),
        (9, 2.262, 3.250),
        (10, 2.228, 3.169),
        (12, 2.179, 3.055),
        (14, 2.145, 2.977),
        (16, 2.120, 2.921),
        (18, 2.101, 2.878),
        (20, 2.086, 2.845),
        (25, 2.060, 2.787),
        (30, 2.042, 2.750),
        (40, 2.021, 2.704),
        (60, 2.000, 2.660),
        (80, 1.990, 2.639),
        (100, 1.984, 2.626),
        (120, 1.980, 2.617),
    ];
    let pick = |lo: &(u64, f64, f64)| -> f64 {
        if confidence >= 0.99 {
            lo.2
        } else {
            lo.1
        }
    };
    assert!(
        (0.5..1.0).contains(&confidence),
        "confidence must be in [0.5, 1), got {confidence}"
    );
    if df == 0 {
        return f64::INFINITY;
    }
    if df >= 120 {
        return if confidence >= 0.99 { 2.576 } else { 1.960 };
    }
    let mut prev = &TABLE[0];
    for row in TABLE {
        if row.0 == df {
            return pick(row);
        }
        if row.0 > df {
            // linear interpolation between prev and row on df
            let f = (df - prev.0) as f64 / (row.0 - prev.0) as f64;
            return pick(prev) + f * (pick(row) - pick(prev));
        }
        prev = row;
    }
    pick(prev)
}

/// A mean with its half-width confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiMean {
    /// Point estimate (mean over replications).
    pub mean: f64,
    /// Half-width of the confidence interval.
    pub half_width: f64,
    /// Number of replications behind the estimate.
    pub n: u64,
}

impl CiMean {
    /// Relative half-width (half_width / |mean|); infinite when the mean is 0.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            if self.half_width == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Aggregates one scalar metric over independent replications and reports a
/// Student-t confidence interval, implementing the paper's stopping rule.
///
/// ```
/// use desim::stats::Replications;
/// let mut t = Replications::new(0.95);
/// for run in [101.0, 99.5, 100.2, 99.8] { t.push(run); }
/// let est = t.estimate();
/// assert!((est.mean - 100.125).abs() < 1e-9);
/// assert!(est.half_width > 0.0);
/// // the paper's rule: repeat until the CI is within a target fraction
/// // of the mean (±1% in the paper; this noisy 4-run demo reaches ±2%)
/// assert!(t.converged(0.02, 4));
/// assert!(!t.converged(0.001, 4));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Replications {
    acc: Welford,
    confidence: f64,
}

impl Replications {
    /// New aggregator at the given confidence level (e.g. 0.95).
    pub fn new(confidence: f64) -> Self {
        Replications {
            acc: Welford::new(),
            confidence,
        }
    }

    /// Record the result of one replication.
    pub fn push(&mut self, value: f64) {
        self.acc.push(value);
    }

    /// Number of replications recorded.
    pub fn count(&self) -> u64 {
        self.acc.count()
    }

    /// Current mean and confidence half-width.
    pub fn estimate(&self) -> CiMean {
        let n = self.acc.count();
        let hw = if n < 2 {
            f64::INFINITY
        } else {
            t_critical(n - 1, self.confidence) * self.acc.std_err()
        };
        CiMean {
            mean: self.acc.mean(),
            half_width: hw,
            n,
        }
    }

    /// True once the relative half-width is at or below `target` (e.g. 0.01
    /// for the paper's ±1%), with at least `min_reps` replications.
    pub fn converged(&self, target: f64, min_reps: u64) -> bool {
        self.acc.count() >= min_reps.max(2) && self.estimate().relative_half_width() <= target
    }
}

/// Sample store with exact quantiles — for per-job distributions (e.g. the
/// turnaround tail) where the paper's mean-only reporting hides latency
/// outliers. O(n) memory; sorting is deferred and cached.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tally {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The `q`-quantile (nearest-rank; `q ∈ [0, 1]`), or `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&mut self) -> Option<f64> {
        self.quantile(1.0)
    }
}

/// Batch-means analysis for one long steady-state run: the autocorrelated
/// within-run sequence is split into `k` contiguous batches whose means are
/// approximately independent, giving a defensible CI without independent
/// replications. Complements [`Replications`] (which the paper's protocol
/// uses) for exploratory single-run studies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: usize,
    current: Welford,
    batch_means: Replications,
}

impl BatchMeans {
    /// Analyzer with `batch_size` observations per batch at the given
    /// confidence level.
    pub fn new(batch_size: usize, confidence: f64) -> Self {
        assert!(batch_size >= 1);
        BatchMeans {
            batch_size,
            current: Welford::new(),
            batch_means: Replications::new(confidence),
        }
    }

    /// Record one observation; closes a batch every `batch_size` pushes.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() as usize == self.batch_size {
            self.batch_means.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Completed batches.
    pub fn batches(&self) -> u64 {
        self.batch_means.count()
    }

    /// CI over completed batch means (the partial batch is excluded).
    pub fn estimate(&self) -> CiMean {
        self.batch_means.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        let merged = a.merge(&b);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-10);
        assert!((merged.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let e = Welford::new();
        let m1 = a.merge(&e);
        let m2 = e.merge(&a);
        assert_eq!(m1.count(), 2);
        assert!((m1.mean() - 2.0).abs() < 1e-12);
        assert!((m2.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn t_critical_known_values() {
        assert!((t_critical(5, 0.95) - 2.571).abs() < 1e-9);
        assert!((t_critical(10, 0.99) - 3.169).abs() < 1e-9);
        assert!((t_critical(1_000, 0.95) - 1.960).abs() < 1e-9);
        // interpolated: df=11 between 10 and 12
        let t11 = t_critical(11, 0.95);
        assert!(t11 < t_critical(10, 0.95) && t11 > t_critical(12, 0.95));
        assert!(t_critical(0, 0.95).is_infinite());
    }

    #[test]
    fn replications_converge_on_constant_data() {
        let mut r = Replications::new(0.95);
        assert!(!r.converged(0.01, 2));
        r.push(10.0);
        assert!(!r.converged(0.01, 2));
        r.push(10.0);
        r.push(10.0);
        assert!(r.converged(0.01, 2));
        let e = r.estimate();
        assert_eq!(e.mean, 10.0);
        assert_eq!(e.half_width, 0.0);
    }

    #[test]
    fn replications_wide_on_noisy_data() {
        let mut r = Replications::new(0.95);
        r.push(1.0);
        r.push(100.0);
        assert!(!r.converged(0.01, 2));
        assert!(r.estimate().relative_half_width() > 1.0);
    }

    #[test]
    fn tally_quantiles_nearest_rank() {
        let mut t = Tally::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            t.push(x);
        }
        assert_eq!(t.count(), 5);
        assert!((t.mean() - 3.0).abs() < 1e-12);
        assert_eq!(t.quantile(0.0), Some(1.0));
        assert_eq!(t.quantile(0.5), Some(3.0));
        assert_eq!(t.quantile(0.9), Some(5.0));
        assert_eq!(t.max(), Some(5.0));
        // push after sort invalidates cache correctly
        t.push(0.5);
        assert_eq!(t.quantile(0.0), Some(0.5));
        assert_eq!(Tally::new().quantile(0.5), None);
    }

    #[test]
    fn batch_means_on_iid_data_tightens() {
        let mut bm = BatchMeans::new(10, 0.95);
        // Deterministic "noise" around 100.
        for i in 0..200 {
            bm.push(100.0 + ((i * 37) % 11) as f64 - 5.0);
        }
        assert_eq!(bm.batches(), 20);
        let e = bm.estimate();
        assert!((e.mean - 100.0).abs() < 1.0, "mean {}", e.mean);
        assert!(e.half_width < 1.0, "hw {}", e.half_width);
    }

    #[test]
    fn batch_means_excludes_partial_batch() {
        let mut bm = BatchMeans::new(10, 0.95);
        for _ in 0..25 {
            bm.push(1.0);
        }
        assert_eq!(bm.batches(), 2, "5 trailing samples stay unbatched");
    }

    #[test]
    fn ci_mean_relative_half_width_edge_cases() {
        let z = CiMean {
            mean: 0.0,
            half_width: 0.0,
            n: 5,
        };
        assert_eq!(z.relative_half_width(), 0.0);
        let inf = CiMean {
            mean: 0.0,
            half_width: 1.0,
            n: 5,
        };
        assert!(inf.relative_half_width().is_infinite());
    }
}
