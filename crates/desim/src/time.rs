//! Simulated time.
//!
//! The paper expresses workload parameters in seconds but the Facebook
//! workload's LogNormal task execution times are fitted in *milliseconds*
//! (LN(9.9511, 1.6764) ms for maps). To represent both without rounding the
//! kernel counts integer milliseconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in (or duration of) simulated time, in integer milliseconds.
///
/// `SimTime` is a transparent newtype over `i64`: cheap to copy, totally
/// ordered, and safe against the unit confusion that plagues simulators that
/// pass around bare floats. Negative values are permitted so that durations
/// and laxity computations (`deadline - start - execution`) stay closed under
/// subtraction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub i64);

impl SimTime {
    /// The zero instant / zero duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never" / "+infinity".
    pub const MAX: SimTime = SimTime(i64::MAX);
    /// The smallest representable time; used as "-infinity".
    pub const MIN: SimTime = SimTime(i64::MIN);

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        SimTime(s * 1000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1000.0).round() as i64)
    }

    /// The raw millisecond count.
    #[inline]
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// The value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating addition — `MAX` stays `MAX`, useful for "never" deadlines.
    #[inline]
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if this value is non-negative (a valid instant on the sim clock).
    #[inline]
    pub fn is_valid_instant(self) -> bool {
        self.0 >= 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Neg for SimTime {
    type Output = SimTime;
    #[inline]
    fn neg(self) -> SimTime {
        SimTime(-self.0)
    }
}

impl Mul<i64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: i64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<i64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: i64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 1000 == 0 {
            write!(f, "{}s", self.0 / 1000)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(5).as_millis(), 5000);
        assert_eq!(SimTime::from_millis(1234).as_secs_f64(), 1.234);
        assert_eq!(SimTime::from_secs_f64(0.0015).as_millis(), 2); // rounds
        assert_eq!(SimTime::from_secs_f64(-1.5).as_millis(), -1500);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(3);
        assert_eq!((a + b).as_millis(), 13_000);
        assert_eq!((a - b).as_millis(), 7_000);
        assert_eq!((a * 2).as_millis(), 20_000);
        assert_eq!((a / 4).as_millis(), 2_500);
        assert_eq!((-b).as_millis(), -3_000);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000_000));
    }

    #[test]
    fn saturating_add_never_overflows() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimTime::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::from_secs(1).saturating_add(SimTime::from_secs(2)),
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(5).to_string(), "5s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }

    #[test]
    fn valid_instant() {
        assert!(SimTime::ZERO.is_valid_instant());
        assert!(!SimTime::from_millis(-1).is_valid_instant());
    }
}
