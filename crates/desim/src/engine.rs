//! The simulation loop.
//!
//! [`Engine`] owns an [`EventQueue`] and repeatedly dispatches the earliest
//! event to a policy-defined [`Process`] handler until the queue drains, a
//! time horizon is reached, or the handler requests termination.

use crate::event::EventQueue;
use crate::time::SimTime;

/// Outcome of handling one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep simulating.
    Continue,
    /// Stop immediately (e.g. the warm-up + measurement window completed).
    Halt,
}

/// A simulation process: the policy side of the kernel.
///
/// The handler receives the event time, the payload, and mutable access to
/// the queue so it can schedule follow-on events.
pub trait Process<E> {
    /// Handle one event. Returning [`Flow::Halt`] ends the run.
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>) -> Flow;
}

// Allow plain closures as processes for tests and simple drivers.
impl<E, F> Process<E> for F
where
    F: FnMut(SimTime, E, &mut EventQueue<E>) -> Flow,
{
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>) -> Flow {
        self(now, event, queue)
    }
}

/// Drives a [`Process`] over an [`EventQueue`] until completion.
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    /// Hard horizon: events after this instant are not dispatched.
    horizon: SimTime,
    events_dispatched: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// An engine with an empty queue and no horizon.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            horizon: SimTime::MAX,
            events_dispatched: 0,
        }
    }

    /// Set a hard simulation horizon. Events timestamped strictly after the
    /// horizon are left undispatched and the run ends when the next event
    /// would cross it.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Mutable access to the queue for seeding initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Immutable access to the queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Run to completion: drains the queue, stopping early at the horizon or
    /// when the process returns [`Flow::Halt`]. Returns the final sim time.
    pub fn run<P: Process<E>>(&mut self, process: &mut P) -> SimTime {
        while let Some(next) = self.queue.peek_time() {
            if next > self.horizon {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event must pop");
            self.events_dispatched += 1;
            if process.handle(now, ev, &mut self.queue) == Flow::Halt {
                break;
            }
        }
        self.queue.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn runs_chain_of_events() {
        let mut engine = Engine::new();
        engine
            .queue_mut()
            .schedule_at(SimTime::from_secs(1), Ev::Tick(0));
        let mut seen = Vec::new();
        let end = engine.run(&mut |now: SimTime, ev: Ev, q: &mut EventQueue<Ev>| {
            let Ev::Tick(n) = ev;
            seen.push((now, n));
            if n < 4 {
                q.schedule_in(SimTime::from_secs(1), Ev::Tick(n + 1));
            }
            Flow::Continue
        });
        assert_eq!(seen.len(), 5);
        assert_eq!(end, SimTime::from_secs(5));
        assert_eq!(engine.events_dispatched(), 5);
    }

    #[test]
    fn halt_stops_early() {
        let mut engine = Engine::new();
        for i in 0..10 {
            engine
                .queue_mut()
                .schedule_at(SimTime::from_secs(i), Ev::Tick(i as u32));
        }
        let mut count = 0;
        engine.run(&mut |_now, _ev, _q: &mut EventQueue<Ev>| {
            count += 1;
            if count == 3 {
                Flow::Halt
            } else {
                Flow::Continue
            }
        });
        assert_eq!(count, 3);
        assert_eq!(engine.queue().len(), 7);
    }

    #[test]
    fn horizon_cuts_off_future_events() {
        let mut engine = Engine::new().with_horizon(SimTime::from_secs(5));
        for i in 0..10 {
            engine
                .queue_mut()
                .schedule_at(SimTime::from_secs(i), Ev::Tick(i as u32));
        }
        let mut count = 0;
        let end = engine.run(&mut |_n, _e, _q: &mut EventQueue<Ev>| {
            count += 1;
            Flow::Continue
        });
        assert_eq!(count, 6); // t = 0..=5
        assert_eq!(end, SimTime::from_secs(5));
    }
}
