//! Future event list.
//!
//! A binary heap keyed by `(time, sequence)` so that events scheduled for the
//! same instant pop in FIFO order. Stable tie-breaking matters for
//! reproducibility: without it, two policies compared under common random
//! numbers could diverge purely from heap ordering noise.

use crate::time::SimTime;
use std::collections::BinaryHeap;

/// A scheduled event: fires at `time`, carrying a policy-defined payload.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future event list of a simulation.
///
/// Events are popped in nondecreasing time order; ties resolve in insertion
/// order. The queue is generic over the payload type `E`, which each policy
/// crate defines as its own event enum.
///
/// ```
/// use desim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(5), "later");
/// q.schedule_at(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.now(), SimTime::from_secs(1));  // clock follows the pops
/// q.schedule_in(SimTime::from_secs(1), "relative");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "relative")));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past is always a policy bug and silently reordering it would corrupt
    /// causality.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedule `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        assert!(
            delay >= SimTime::ZERO,
            "negative delay {delay:?} scheduling event"
        );
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "heap returned an event in the past");
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events (used when a run terminates early).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), 0);
        q.pop();
        q.schedule_in(SimTime::from_secs(5), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(9), ());
    }

    #[test]
    fn len_empty_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
