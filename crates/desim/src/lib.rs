//! # desim — discrete event simulation kernel
//!
//! A small, allocation-conscious discrete event simulation (DES) substrate
//! used to evaluate resource-management policies for an *open system*
//! subjected to a stream of job arrivals, following the simulation
//! methodology of Lim et al. (ICPP 2014), §VI.
//!
//! The crate provides:
//!
//! * [`SimTime`] — a millisecond-resolution simulated clock value,
//! * [`EventQueue`] / [`Engine`] — a stable-ordered future event list and the
//!   simulation loop that drains it,
//! * [`stats`] — Welford accumulators, Student-t confidence intervals and
//!   replication aggregation used to reproduce the paper's "±1% of the mean
//!   at 95% confidence" stopping rule,
//! * [`rng`] — reproducible, independently-seeded random number streams so
//!   that factor-at-a-time experiments use common random numbers across
//!   policies.
//!
//! The kernel is deliberately policy-free: resource managers (MRCP-RM and
//! the baselines) are implemented in their own crates as [`Process`]
//! handlers over their own event enums.

pub mod engine;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Engine, Process};
pub use event::EventQueue;
pub use rng::RngStreams;
pub use time::SimTime;
