//! Reproducible random number streams.
//!
//! Each replication derives independently-seeded substreams (arrivals, task
//! sizes, start-time offsets, …) from a single master seed, so that
//! factor-at-a-time experiments can hold every other stochastic component
//! fixed (common random numbers) while one factor varies — the variance
//! reduction the paper's factor sweeps implicitly rely on.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives named, statistically independent RNG substreams from one master
/// seed.
///
/// Substream seeds are produced with SplitMix64 over `master ⊕ hash(name)`,
/// a standard seed-derivation scheme whose outputs are uncorrelated for
/// distinct inputs.
#[derive(Debug, Clone)]
pub struct RngStreams {
    master: u64,
}

/// SplitMix64 step — used only for seed derivation, never for sampling.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the stream name, for a stable name → u64 mapping.
#[inline]
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl RngStreams {
    /// Streams rooted at `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        RngStreams {
            master: master_seed,
        }
    }

    /// Streams for replication `rep` of the experiment seeded by
    /// `master_seed`: each replication gets its own independent root.
    pub fn for_replication(master_seed: u64, rep: u64) -> Self {
        RngStreams {
            master: splitmix64(master_seed ^ splitmix64(rep.wrapping_add(1))),
        }
    }

    /// A fresh RNG for the named substream. Calling twice with the same name
    /// yields identical streams (by design — a stream is identified by name).
    pub fn stream(&self, name: &str) -> StdRng {
        let seed = splitmix64(self.master ^ fnv1a(name));
        StdRng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn take(rng: &mut StdRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn same_name_same_stream() {
        let s = RngStreams::new(42);
        let a = take(&mut s.stream("arrivals"), 8);
        let b = take(&mut s.stream("arrivals"), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let s = RngStreams::new(42);
        let a = take(&mut s.stream("arrivals"), 8);
        let b = take(&mut s.stream("sizes"), 8);
        assert_ne!(a, b);
    }

    #[test]
    fn different_masters_differ() {
        let a = take(&mut RngStreams::new(1).stream("x"), 8);
        let b = take(&mut RngStreams::new(2).stream("x"), 8);
        assert_ne!(a, b);
    }

    #[test]
    fn replications_are_independent_but_reproducible() {
        let r0a = take(&mut RngStreams::for_replication(7, 0).stream("x"), 8);
        let r0b = take(&mut RngStreams::for_replication(7, 0).stream("x"), 8);
        let r1 = take(&mut RngStreams::for_replication(7, 1).stream("x"), 8);
        assert_eq!(r0a, r0b);
        assert_ne!(r0a, r1);
    }
}
