//! Property tests for the simulation kernel: total temporal order with
//! FIFO tie-breaking, and statistics correctness against naive references.

use desim::stats::{Replications, Tally, Welford};
use desim::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events pop in nondecreasing time; equal times pop in insertion order.
    #[test]
    fn queue_is_a_stable_priority_queue(times in prop::collection::vec(0i64..50, 1..80)) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(t), seq);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at equal times");
            }
        }
    }

    /// Welford mean/variance equal the two-pass reference within float
    /// tolerance, in any stream order.
    #[test]
    fn welford_equals_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (xs.len() - 1) as f64;
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() <= 1e-5 * (1.0 + var));
    }

    /// Tally quantiles bracket the data and are monotone in q.
    #[test]
    fn tally_quantiles_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut t = Tally::new();
        for &x in &xs {
            t.push(x);
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = t.quantile(q).unwrap();
            prop_assert!(v >= min && v <= max);
            prop_assert!(v >= prev, "quantiles must be monotone in q");
            prev = v;
        }
    }

    /// Replication CIs cover constant data exactly and are symmetric.
    #[test]
    fn replication_ci_on_shifted_constants(base in -100.0f64..100.0, n in 2u64..30) {
        let mut r = Replications::new(0.95);
        for _ in 0..n {
            r.push(base);
        }
        let e = r.estimate();
        prop_assert_eq!(e.n, n);
        prop_assert!((e.mean - base).abs() < 1e-9);
        prop_assert!(e.half_width.abs() < 1e-9);
    }
}
