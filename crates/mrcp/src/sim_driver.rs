//! MRCP-RM inside the discrete event simulator (the §VI methodology).
//!
//! The driver feeds a finite workload of jobs into the manager as an open
//! arrival stream, executes the installed schedules, and produces the
//! paper's metrics:
//!
//! * `O` — average matchmaking and scheduling time per job (wall clock of
//!   the solver invocations divided by jobs scheduled),
//! * `N` / `P` — count / proportion of jobs missing their deadlines,
//! * `T` — average turnaround `CT_j − s_j`.
//!
//! As in the paper, scheduling happens on the manager's "own CPU": solver
//! wall time is *measured* but does not consume simulated time. Schedules
//! are versioned so that start events armed from a superseded plan are
//! ignored — mirroring how the Java implementation rewrites the dispatch
//! plan on each round.

use crate::manager::{
    AbandonedJob, AdmissionOutcome, FailureAction, JobCompletion, ManagerError, ManagerStats,
    MrcpConfig, MrcpRm, ScheduleEntry, Submitted,
};
use desim::engine::Flow;
use desim::{Engine, EventQueue, RngStreams, SimTime};
use std::collections::{HashMap, HashSet};
use std::time::Duration;
use workload::AttemptOutcome;
use workload::{FaultConfig, FaultModel, Job, JobId, Resource, ResourceId, TaskId};

/// How the matchmaking-and-scheduling time `O` interacts with simulated
/// time.
///
/// The paper runs MRCP-RM "on its own CPU": scheduling time is measured
/// but jobs queue while the manager is busy. [`Instantaneous`]
/// (the default, and what the paper's metrics assume) installs schedules
/// at the invocation instant; the other variants charge a simulated busy
/// period during which further arrivals batch into the same round —
/// useful for studying the regime the paper's future work targets, where
/// λ is high enough that `O` stops being negligible.
///
/// [`Instantaneous`]: OverheadModel::Instantaneous
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadModel {
    /// Schedules install at the invocation instant (`O` measured only).
    Instantaneous,
    /// Every scheduling round occupies the manager for a fixed interval.
    Fixed(SimTime),
    /// Round cost grows with model size: `base + per_task × tasks`,
    /// matching the paper's observation that model generation and solve
    /// time scale with the number of tasks. Admission probes are charged
    /// too (`base + per_task × submitted tasks` per submission pass), and
    /// all solve passes serialize on the manager, so call-per-arrival
    /// ingestion pays `base` once per job while a batched flush pays it
    /// once per burst.
    PerTask {
        /// Fixed component per round.
        base: SimTime,
        /// Marginal cost per task in the model.
        per_task: SimTime,
    },
}

impl OverheadModel {
    fn delay(&self, n_tasks: usize) -> SimTime {
        match *self {
            OverheadModel::Instantaneous => SimTime::ZERO,
            OverheadModel::Fixed(d) => d,
            OverheadModel::PerTask { base, per_task } => base + per_task * n_tasks as i64,
        }
    }

    /// Busy time an admission probe charges to the manager. Only
    /// [`PerTask`] charges probes: the probe is a model-generation +
    /// solve pass over the submitted jobs, so it costs the same shape as
    /// a round over that many tasks. `Fixed` keeps its historical
    /// meaning — a flat cost per *replan* round only — so runs that
    /// compare burst ingestion modes under `Fixed` stay comparable.
    ///
    /// [`PerTask`]: OverheadModel::PerTask
    fn probe_delay(&self, n_tasks: usize) -> SimTime {
        match *self {
            OverheadModel::Instantaneous | OverheadModel::Fixed(_) => SimTime::ZERO,
            OverheadModel::PerTask { base, per_task } => base + per_task * n_tasks as i64,
        }
    }
}

/// Arrival-coalescing knobs for the async ingest front door: instead of
/// paying one admission probe + one reschedule per arrival, the driver
/// buffers arrivals and submits them as one batch through
/// [`ResourceManager::submit_batch`], closing the batch when it reaches
/// [`max_batch`](Self::max_batch) jobs or when the oldest buffered arrival
/// has lingered [`max_linger`](Self::max_linger) — whichever comes first.
/// The CP solve cost of the post-batch reschedule is thereby amortized
/// across the burst. Fully deterministic: the flush schedule is driven by
/// the simulated clock, never by wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Flush as soon as this many arrivals are buffered (≥ 1). With
    /// `max_batch == 1` every arrival flushes inline and no linger timer
    /// is ever armed, making the run bit-identical to the legacy
    /// per-arrival path.
    pub max_batch: usize,
    /// Upper bound on how long an arrival may sit in the buffer before a
    /// flush. A timer is armed when the buffer becomes non-empty; an
    /// arrival can flush *earlier* than its own linger bound when it joins
    /// a batch whose timer is already running.
    pub max_linger: SimTime,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            max_batch: 32,
            max_linger: SimTime::from_millis(50),
        }
    }
}

/// Simulation inputs: a cluster and a finite arrival-ordered job list.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Manager configuration.
    pub manager: MrcpConfig,
    /// Discard the first `warmup_jobs` completions from the metrics
    /// (steady-state measurement; the jobs still occupy resources).
    pub warmup_jobs: usize,
    /// Whether scheduling rounds consume simulated time.
    pub overhead: OverheadModel,
    /// Batched arrival ingestion (`None` = the legacy per-arrival path,
    /// bit-identical to every run recorded before the knob existed).
    pub ingest: Option<IngestConfig>,
    /// Also reschedule when a job completes (the paper replans only on
    /// arrivals; with exact execution times a completion adds no new
    /// information, but it gives a budget-limited solver another, smaller
    /// model to improve on — an extension worth ablating).
    pub reschedule_on_completion: bool,
    /// Fault injection (task failures, stragglers, resource outages). The
    /// default injects nothing, reproducing the paper's reliable-cluster
    /// assumption. When active, `faults.retry_budget` overrides
    /// `manager.retry_budget` so the injection and recovery policies agree.
    pub faults: FaultConfig,
    /// Seed for the fault processes (independent of the workload's RNG).
    pub fault_seed: u64,
    /// Manager-crash injection: kill the manager at chosen points and ask
    /// it to rebuild itself from durable state (see
    /// [`ResourceManager::crash_and_recover`]). The default injects
    /// nothing; against a non-durable manager every injected crash is a
    /// no-op.
    pub manager_crashes: ManagerCrashConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            manager: MrcpConfig::default(),
            warmup_jobs: 0,
            overhead: OverheadModel::Instantaneous,
            ingest: None,
            reschedule_on_completion: false,
            faults: FaultConfig::default(),
            fault_seed: 0,
            manager_crashes: ManagerCrashConfig::default(),
        }
    }
}

/// Manager-crash fault knob (`FaultConfig`-style, but aimed at the
/// manager process itself): the driver calls
/// [`ResourceManager::crash_and_recover`] immediately before a
/// state-mutating manager command, either at fixed command indices or on
/// an MTTF renewal process over simulated time. A durable manager drops
/// its in-memory state and rebuilds from disk; the recovery-equivalence
/// property tests assert the run's [`RunMetrics::deterministic_signature`]
/// is unchanged by any such interruption.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ManagerCrashConfig {
    /// Crash immediately before the k-th (0-based) state-mutating manager
    /// command, for each listed index — deterministic crash points for
    /// the equivalence proptests. Order and duplicates do not matter.
    pub at_commands: Vec<u64>,
    /// Renewal process: mean simulated time between manager crashes
    /// (exponential inter-crash times). `None` disables the process.
    pub mttf: Option<SimTime>,
    /// Seed for the renewal process (independent of workload and fault
    /// RNGs).
    pub seed: u64,
}

impl ManagerCrashConfig {
    /// True when any crash source is configured.
    pub fn is_active(&self) -> bool {
        !self.at_commands.is_empty() || self.mttf.is_some()
    }
}

/// Metrics of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunMetrics {
    /// Jobs that arrived.
    pub arrived: usize,
    /// Jobs that completed (equals `arrived` when the run drains).
    pub completed: usize,
    /// Jobs measured after warm-up.
    pub measured: usize,
    /// Late jobs among measured (`N`).
    pub late: usize,
    /// Proportion of late jobs (`P`), in [0, 1].
    pub p_late: f64,
    /// Mean turnaround `CT_j − s_j` over measured jobs, seconds (`T`).
    pub mean_turnaround_s: f64,
    /// 95th-percentile turnaround over measured jobs, seconds (tail the
    /// paper's mean-only `T` hides).
    pub p95_turnaround_s: f64,
    /// Worst turnaround over measured jobs, seconds.
    pub max_turnaround_s: f64,
    /// Mean matchmaking+scheduling wall time per job, seconds (`O`).
    pub o_per_job_s: f64,
    /// Scheduling rounds run.
    pub invocations: u64,
    /// Mean solver nodes per round (deterministic overhead proxy).
    pub mean_nodes_per_round: f64,
    /// Largest model (task count) solved in a round.
    pub max_tasks_in_model: usize,
    /// Simulated end time, seconds.
    pub end_time_s: f64,
    /// Task attempts that failed mid-run.
    pub tasks_failed: u64,
    /// Tasks sent back to the queue (after a failure or a crash).
    pub tasks_requeued: u64,
    /// Attempts that straggled (ran longer than nominal).
    pub stragglers: u64,
    /// Resource down events that took effect.
    pub resource_crashes: u64,
    /// Jobs abandoned after a task exhausted its retry budget.
    pub jobs_abandoned: usize,
    /// Measured late jobs whose job was touched by a fault (failed or
    /// straggling attempt, or a crash interruption) — deadline misses
    /// attributable to the injected failures rather than to load.
    pub late_due_to_faults: usize,
    /// Scheduling rounds that fell down the degradation ladder.
    pub degraded_rounds: u64,
    /// Scheduling rounds that produced no schedule at all.
    pub failed_rounds: u64,
    /// Arrivals refused by admission control or the queue bound.
    pub jobs_rejected: u64,
    /// Arrivals admitted with a renegotiated deadline.
    pub jobs_renegotiated: u64,
    /// Admitted jobs shed later to make room for more urgent arrivals.
    pub jobs_shed: u64,
    /// High-water mark of jobs in the system at once.
    pub max_queue_depth: usize,
    /// Budget-controller scale changes over the run.
    pub budget_adaptations: u64,
    /// Longest single scheduling round, seconds (the overload figure's
    /// per-round latency bound).
    pub max_round_latency_s: f64,
    /// Rounds warm-started from the previous round's cached placements
    /// (cross-round incremental reuse).
    pub warm_rounds: u64,
    /// Round-cache invalidations (resource availability changes).
    pub cache_invalidations: u64,
    /// Injected manager crashes the manager recovered from (see
    /// [`ManagerCrashConfig`]; 0 unless crash injection is configured and
    /// the manager is durable).
    pub manager_crashes: u64,
}

impl RunMetrics {
    /// This run with every field zeroed that may legitimately differ
    /// between two runs of the same workload and seed; the rest must
    /// match bit-for-bit. Two classes are zeroed:
    ///
    /// * **wall-clock observations** — `o_per_job_s`,
    ///   `max_round_latency_s`, the latency-EWMA-driven
    ///   `budget_adaptations`, and (under a solver time limit)
    ///   `mean_nodes_per_round` measure host wall time;
    /// * **injected perturbations** — `manager_crashes` counts recoveries
    ///   the run was *subjected to*, and durable recovery must make a
    ///   crashed run indistinguishable from a clean one, so the count
    ///   itself cannot be part of the comparison.
    ///
    /// The struct is destructured exhaustively on purpose: adding a field
    /// to [`RunMetrics`] without classifying it here — deterministic, or
    /// zeroed with a reason — is a compile error, not a silent hole in
    /// the determinism and recovery-equivalence tests.
    pub fn deterministic_signature(&self) -> RunMetrics {
        let RunMetrics {
            arrived,
            completed,
            measured,
            late,
            p_late,
            mean_turnaround_s,
            p95_turnaround_s,
            max_turnaround_s,
            o_per_job_s: _,
            invocations,
            mean_nodes_per_round: _,
            max_tasks_in_model,
            end_time_s,
            tasks_failed,
            tasks_requeued,
            stragglers,
            resource_crashes,
            jobs_abandoned,
            late_due_to_faults,
            degraded_rounds,
            failed_rounds,
            jobs_rejected,
            jobs_renegotiated,
            jobs_shed,
            max_queue_depth,
            budget_adaptations: _,
            max_round_latency_s: _,
            warm_rounds,
            cache_invalidations,
            manager_crashes: _,
        } = *self;
        RunMetrics {
            arrived,
            completed,
            measured,
            late,
            p_late,
            mean_turnaround_s,
            p95_turnaround_s,
            max_turnaround_s,
            o_per_job_s: 0.0,
            invocations,
            mean_nodes_per_round: 0.0,
            max_tasks_in_model,
            end_time_s,
            tasks_failed,
            tasks_requeued,
            stragglers,
            resource_crashes,
            jobs_abandoned,
            late_due_to_faults,
            degraded_rounds,
            failed_rounds,
            jobs_rejected,
            jobs_renegotiated,
            jobs_shed,
            max_queue_depth,
            budget_adaptations: 0,
            max_round_latency_s: 0.0,
            warm_rounds,
            cache_invalidations,
            manager_crashes: 0,
        }
    }
}

/// The manager call surface the simulation driver runs against. The
/// single-cell [`MrcpRm`] implements it by delegation; the federation
/// layer (`crates/cluster`) implements it over K sharded managers, so the
/// same event loop — arrivals, deferral activations, task lifecycle,
/// faults — drives either topology with identical semantics.
pub trait ResourceManager {
    /// See [`MrcpRm::submit_with_admission`].
    fn submit_with_admission(
        &mut self,
        job: Job,
        now: SimTime,
    ) -> Result<AdmissionOutcome, ManagerError>;
    /// Submit a coalesced burst of arrivals in one pass, returning one
    /// admission outcome per job in input order. The default decomposes
    /// the batch into sequential [`submit_with_admission`] calls at the
    /// same timestamp — semantically the batch is *defined* as that
    /// sequential composition, and implementations overriding it for
    /// throughput (the federation routes a whole burst in one pass) must
    /// preserve per-job outcomes' meaning while amortizing shared work.
    ///
    /// [`submit_with_admission`]: Self::submit_with_admission
    fn submit_batch(
        &mut self,
        jobs: Vec<Job>,
        now: SimTime,
    ) -> Vec<Result<AdmissionOutcome, ManagerError>> {
        jobs.into_iter()
            .map(|j| self.submit_with_admission(j, now))
            .collect()
    }
    /// See [`MrcpRm::activate_due`].
    fn activate_due(&mut self, now: SimTime) -> usize;
    /// See [`MrcpRm::reschedule`].
    fn reschedule(&mut self, now: SimTime) -> Vec<ScheduleEntry>;
    /// See [`MrcpRm::task_started`].
    fn task_started(&mut self, task: TaskId, now: SimTime) -> Result<ResourceId, ManagerError>;
    /// See [`MrcpRm::task_completed`].
    fn task_completed(
        &mut self,
        task: TaskId,
        now: SimTime,
    ) -> Result<Option<JobCompletion>, ManagerError>;
    /// See [`MrcpRm::task_duration_revised`].
    fn task_duration_revised(
        &mut self,
        task: TaskId,
        new_exec: SimTime,
    ) -> Result<(), ManagerError>;
    /// See [`MrcpRm::task_failed`].
    fn task_failed(&mut self, task: TaskId, now: SimTime) -> Result<FailureAction, ManagerError>;
    /// See [`MrcpRm::resource_down`].
    fn resource_down(&mut self, rid: ResourceId, now: SimTime)
        -> Result<Vec<TaskId>, ManagerError>;
    /// See [`MrcpRm::resource_up`].
    fn resource_up(&mut self, rid: ResourceId, now: SimTime) -> Result<(), ManagerError>;
    /// See [`MrcpRm::jobs_in_system`].
    fn jobs_in_system(&self) -> usize;
    /// See [`MrcpRm::stats`] — fleet-aggregated for multi-cell managers.
    fn stats(&self) -> ManagerStats;
    /// Simulate a manager-process crash at `now`: drop all in-memory
    /// state and rebuild from durable storage. Returns `true` when a
    /// recovery actually happened; the default is a no-op `false` for
    /// managers with no durability layer (their state would simply be
    /// lost, which is exactly the failure mode `crates/durability`
    /// exists to remove).
    fn crash_and_recover(&mut self, now: SimTime) -> bool {
        let _ = now;
        false
    }
}

impl ResourceManager for MrcpRm {
    fn submit_with_admission(
        &mut self,
        job: Job,
        now: SimTime,
    ) -> Result<AdmissionOutcome, ManagerError> {
        MrcpRm::submit_with_admission(self, job, now)
    }
    fn activate_due(&mut self, now: SimTime) -> usize {
        MrcpRm::activate_due(self, now)
    }
    fn reschedule(&mut self, now: SimTime) -> Vec<ScheduleEntry> {
        MrcpRm::reschedule(self, now)
    }
    fn task_started(&mut self, task: TaskId, now: SimTime) -> Result<ResourceId, ManagerError> {
        MrcpRm::task_started(self, task, now)
    }
    fn task_completed(
        &mut self,
        task: TaskId,
        now: SimTime,
    ) -> Result<Option<JobCompletion>, ManagerError> {
        MrcpRm::task_completed(self, task, now)
    }
    fn task_duration_revised(
        &mut self,
        task: TaskId,
        new_exec: SimTime,
    ) -> Result<(), ManagerError> {
        MrcpRm::task_duration_revised(self, task, new_exec)
    }
    fn task_failed(&mut self, task: TaskId, now: SimTime) -> Result<FailureAction, ManagerError> {
        MrcpRm::task_failed(self, task, now)
    }
    fn resource_down(
        &mut self,
        rid: ResourceId,
        now: SimTime,
    ) -> Result<Vec<TaskId>, ManagerError> {
        MrcpRm::resource_down(self, rid, now)
    }
    fn resource_up(&mut self, rid: ResourceId, now: SimTime) -> Result<(), ManagerError> {
        MrcpRm::resource_up(self, rid, now)
    }
    fn jobs_in_system(&self) -> usize {
        MrcpRm::jobs_in_system(self)
    }
    fn stats(&self) -> ManagerStats {
        MrcpRm::stats(self)
    }
}

/// A [`ResourceManager`] decorator that runs an observer over the inner
/// manager after every scheduling round — the hook the chaos harness
/// uses to run its invariant checker at each round boundary without
/// teaching the driver anything about invariants. All other calls
/// delegate untouched.
#[derive(Debug)]
pub struct Watched<M, F> {
    inner: M,
    observer: F,
}

impl<M: ResourceManager, F: FnMut(&M)> Watched<M, F> {
    /// Wrap `inner`, invoking `observer(&inner)` after each
    /// [`ResourceManager::reschedule`] returns.
    pub fn new(inner: M, observer: F) -> Self {
        Watched { inner, observer }
    }

    /// The wrapped manager.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwrap, discarding the observer.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: ResourceManager, F: FnMut(&M)> ResourceManager for Watched<M, F> {
    fn submit_with_admission(
        &mut self,
        job: Job,
        now: SimTime,
    ) -> Result<AdmissionOutcome, ManagerError> {
        self.inner.submit_with_admission(job, now)
    }
    fn submit_batch(
        &mut self,
        jobs: Vec<Job>,
        now: SimTime,
    ) -> Vec<Result<AdmissionOutcome, ManagerError>> {
        // Forward rather than decompose so a batching-aware inner manager
        // (the federation's one-pass routing) keeps its override.
        self.inner.submit_batch(jobs, now)
    }
    fn activate_due(&mut self, now: SimTime) -> usize {
        self.inner.activate_due(now)
    }
    fn reschedule(&mut self, now: SimTime) -> Vec<ScheduleEntry> {
        let plan = self.inner.reschedule(now);
        (self.observer)(&self.inner);
        plan
    }
    fn task_started(&mut self, task: TaskId, now: SimTime) -> Result<ResourceId, ManagerError> {
        self.inner.task_started(task, now)
    }
    fn task_completed(
        &mut self,
        task: TaskId,
        now: SimTime,
    ) -> Result<Option<JobCompletion>, ManagerError> {
        self.inner.task_completed(task, now)
    }
    fn task_duration_revised(
        &mut self,
        task: TaskId,
        new_exec: SimTime,
    ) -> Result<(), ManagerError> {
        self.inner.task_duration_revised(task, new_exec)
    }
    fn task_failed(&mut self, task: TaskId, now: SimTime) -> Result<FailureAction, ManagerError> {
        self.inner.task_failed(task, now)
    }
    fn resource_down(
        &mut self,
        rid: ResourceId,
        now: SimTime,
    ) -> Result<Vec<TaskId>, ManagerError> {
        self.inner.resource_down(rid, now)
    }
    fn resource_up(&mut self, rid: ResourceId, now: SimTime) -> Result<(), ManagerError> {
        self.inner.resource_up(rid, now)
    }
    fn jobs_in_system(&self) -> usize {
        self.inner.jobs_in_system()
    }
    fn stats(&self) -> ManagerStats {
        self.inner.stats()
    }
    fn crash_and_recover(&mut self, now: SimTime) -> bool {
        self.inner.crash_and_recover(now)
    }
}

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    /// The ingest linger timer fired: flush whatever is buffered. A stale
    /// timer (the buffer already flushed on `max_batch`) is a no-op.
    Flush,
    Activate,
    /// The manager's busy period ends; install the (re)computed schedule.
    Install,
    TaskStart {
        task: TaskId,
        version: u64,
    },
    /// Completion of one *attempt*; stale once the attempt is superseded
    /// (failed, interrupted by a crash, or its job abandoned).
    TaskComplete {
        task: TaskId,
        attempt: u32,
    },
    /// Mid-run failure of one attempt, same staleness rule.
    TaskFail {
        task: TaskId,
        attempt: u32,
    },
    /// A resource crashes. `up_after` is the outage duration for scheduled
    /// windows; `None` means a random crash whose repair time is sampled.
    ResourceDown {
        resource: ResourceId,
        up_after: Option<SimTime>,
    },
    ResourceUp {
        resource: ResourceId,
    },
}

struct Driver<M: ResourceManager> {
    rm: M,
    jobs: Vec<Option<Job>>,
    total_jobs: usize,
    version: u64,
    /// version at which each pending start event is valid
    armed: HashMap<TaskId, u64>,
    exec_time: HashMap<TaskId, SimTime>,
    /// Task → owning job, for fault attribution (lives until the job
    /// completes or is abandoned).
    task_job: HashMap<TaskId, JobId>,
    /// Currently running attempt per task; a pending completion/failure
    /// event is live only while its attempt number is recorded here.
    running: HashMap<TaskId, u32>,
    /// Attempts started so far per task.
    attempts: HashMap<TaskId, u32>,
    /// Jobs touched by any fault, for `late_due_to_faults`.
    fault_jobs: HashSet<JobId>,
    faults: Option<FaultModel>,
    stragglers: u64,
    resource_crashes: u64,
    jobs_abandoned: usize,
    /// Manager-crash injection: pending fixed crash points (sorted
    /// descending; consumed from the back as the command counter passes
    /// them), the renewal-process state, and performed recoveries.
    crash_at: Vec<u64>,
    commands: u64,
    crash_next: Option<SimTime>,
    crash_rng: Option<rand::rngs::StdRng>,
    crash_mttf_s: f64,
    manager_crashes: u64,
    completions: Vec<JobOutcome>,
    arrived: usize,
    overhead: OverheadModel,
    /// An Install event is pending: arrivals batch into it (the paper's
    /// job queue while the RM is busy).
    install_pending: bool,
    reschedule_on_completion: bool,
    /// Arrival coalescing (`None` = legacy per-arrival submission).
    ingest: Option<IngestConfig>,
    /// Arrivals buffered since the last flush.
    ingest_buf: Vec<Job>,
    /// A linger [`Ev::Flush`] is in flight. Not reset by a `max_batch`
    /// flush: the stale timer then fires as a (possibly empty) early
    /// flush, which only ever *shortens* an arrival's linger bound.
    flush_pending: bool,
    /// The manager-as-single-server busy horizon: admission probes and
    /// replan rounds serialize on the manager's CPU, so each solve pass
    /// extends this and installs fire no earlier than it. This is where
    /// call-per-arrival ingestion pays `O` once per job while a batched
    /// flush pays it once per burst.
    busy_until: SimTime,
}

impl<M: ResourceManager> Driver<M> {
    /// Manager-crash gate, run immediately before every state-mutating
    /// manager command. A crash between two commands is fully general:
    /// commands are atomic with respect to the manager's durable state,
    /// so "after command k" and "before command k+1" are the same point.
    fn pre_command(&mut self, now: SimTime) {
        let mut due = false;
        while self.crash_at.last() == Some(&self.commands) {
            self.crash_at.pop();
            due = true;
        }
        if let (Some(next), Some(rng)) = (self.crash_next, self.crash_rng.as_mut()) {
            if now >= next {
                due = true;
                let gap = workload::dist::Exponential::new(1.0 / self.crash_mttf_s).sample(rng);
                self.crash_next =
                    Some(now + SimTime::from_secs_f64(gap).max(SimTime::from_millis(1)));
            }
        }
        self.commands += 1;
        if due && self.rm.crash_and_recover(now) {
            self.manager_crashes += 1;
        }
    }

    fn install(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        self.pre_command(now);
        let plan = self.rm.reschedule(now);
        self.version += 1;
        self.armed.clear();
        for e in plan {
            self.armed.insert(e.task, self.version);
            queue.schedule_at(
                e.start,
                Ev::TaskStart {
                    task: e.task,
                    version: self.version,
                },
            );
        }
    }

    /// The workload is exhausted and every job has left the system: the
    /// crash renewal process must stop re-arming or the run never ends.
    fn drained(&self) -> bool {
        self.arrived == self.total_jobs
            && self.ingest_buf.is_empty()
            && self.rm.jobs_in_system() == 0
    }

    /// Scale a duration by a sampled factor, keeping it a positive event
    /// offset (millisecond resolution).
    fn scale(t: SimTime, f: f64) -> SimTime {
        SimTime::from_secs_f64(t.as_secs_f64() * f).max(SimTime::from_millis(1))
    }

    /// Drop every trace of a job that left the system without completing
    /// (shed by backpressure or abandoned after retry exhaustion): pending
    /// start events go stale, live attempts stop mattering, and the
    /// execution bookkeeping is released.
    fn forget_job(&mut self, ab: &AbandonedJob) {
        for t in &ab.tasks {
            self.armed.remove(t);
            self.running.remove(t);
            self.exec_time.remove(t);
            self.task_job.remove(t);
            self.attempts.remove(t);
        }
    }

    /// Flush the ingest buffer: one crash gate, one batched submission,
    /// per-job bookkeeping, and at most one scheduling round for the whole
    /// burst — the coalescing that amortizes CP solve cost across a batch.
    /// With a single buffered job this performs *exactly* the legacy
    /// per-arrival command sequence, which is what makes `max_batch == 1`
    /// bit-identical to `ingest: None`.
    fn flush(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        if self.ingest_buf.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.ingest_buf);
        let metas: Vec<(JobId, Vec<(TaskId, SimTime)>)> = batch
            .iter()
            .map(|j| (j.id, j.tasks().map(|t| (t.id, t.exec_time)).collect()))
            .collect();
        self.pre_command(now);
        // One admission probe for the whole burst: the solve pass covers
        // every job in the batch, so the burst pays `O` once. This is the
        // cost the front door amortizes versus call-per-arrival ingestion.
        let probe_tasks: usize = metas.iter().map(|(_, t)| t.len()).sum();
        self.note_busy(now, self.overhead.probe_delay(probe_tasks));
        let outs = self.rm.submit_batch(batch, now);
        debug_assert_eq!(outs.len(), metas.len(), "one outcome per submitted job");
        let mut want_install = false;
        for (out, (job_id, tasks)) in outs.into_iter().zip(metas) {
            let out = out.expect("generated jobs are unique");
            // Shed jobs leave the system wholesale; their armed starts go
            // stale via `forget_job`, and the freed capacity is picked up
            // by the replan below.
            for ab in &out.shed {
                self.forget_job(ab);
            }
            match out.submitted {
                Some(sub) => {
                    // Execution state exists only for admitted jobs — a
                    // rejected arrival must leave no trace.
                    for (tid, e) in tasks {
                        self.exec_time.insert(tid, e);
                        self.task_job.insert(tid, job_id);
                    }
                    match sub {
                        Submitted::Active => want_install = true,
                        Submitted::Deferred(act) => {
                            queue.schedule_at(act, Ev::Activate);
                            if !out.shed.is_empty() && self.rm.jobs_in_system() > 0 {
                                want_install = true;
                            }
                        }
                    }
                }
                None => {
                    if !out.shed.is_empty() && self.rm.jobs_in_system() > 0 {
                        want_install = true;
                    }
                }
            }
        }
        if want_install {
            self.request_install(now, queue);
        }
    }

    /// Charge a solve pass to the manager's single-server busy horizon:
    /// work starts when the manager frees up and occupies it for `cost`.
    fn note_busy(&mut self, now: SimTime, cost: SimTime) {
        if cost > SimTime::ZERO {
            self.busy_until = self.busy_until.max(now) + cost;
        }
    }

    /// Request a scheduling round: immediate under
    /// [`OverheadModel::Instantaneous`], otherwise after the simulated busy
    /// period — during which further requests coalesce. The round queues
    /// behind any admission-probe work already charged to the manager.
    fn request_install(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        match self.overhead {
            OverheadModel::Instantaneous => self.install(now, queue),
            model => {
                if !self.install_pending {
                    self.install_pending = true;
                    // Busy period sized by the work outstanding right now.
                    let n_tasks: usize = self.exec_time.len();
                    let at = self.busy_until.max(now) + model.delay(n_tasks);
                    self.busy_until = at;
                    queue.schedule_at(at, Ev::Install);
                }
            }
        }
    }
}

impl<M: ResourceManager> desim::Process<Ev> for Driver<M> {
    fn handle(&mut self, now: SimTime, ev: Ev, queue: &mut EventQueue<Ev>) -> Flow {
        match ev {
            Ev::Arrival(idx) => {
                let job = self.jobs[idx].take().expect("job arrives once");
                self.arrived += 1;
                if let Some(ing) = self.ingest {
                    // Batched ingest: buffer, flush on max_batch now or on
                    // the linger timer later. Same-timestamp arrivals all
                    // enter the buffer before any timer armed here fires
                    // (the event queue is FIFO at equal times), so a burst
                    // coalesces into one submission pass.
                    self.ingest_buf.push(job);
                    if self.ingest_buf.len() >= ing.max_batch {
                        self.flush(now, queue);
                    } else if !self.flush_pending {
                        self.flush_pending = true;
                        queue.schedule_at(now + ing.max_linger, Ev::Flush);
                    }
                    return Flow::Continue;
                }
                let job_id = job.id;
                let tasks: Vec<(TaskId, SimTime)> =
                    job.tasks().map(|t| (t.id, t.exec_time)).collect();
                self.pre_command(now);
                // Call-per-arrival ingestion probes once per job — the
                // per-submission `O` that batched flushes amortize.
                self.note_busy(now, self.overhead.probe_delay(tasks.len()));
                let out = self
                    .rm
                    .submit_with_admission(job, now)
                    .expect("generated jobs are unique");
                // Shed jobs leave the system wholesale; their armed starts
                // go stale via `forget_job`, and the freed capacity is
                // picked up by the replan below.
                for ab in &out.shed {
                    self.forget_job(ab);
                }
                match out.submitted {
                    Some(sub) => {
                        // Execution state exists only for admitted jobs —
                        // a rejected arrival must leave no trace.
                        for (tid, e) in tasks {
                            self.exec_time.insert(tid, e);
                            self.task_job.insert(tid, job_id);
                        }
                        match sub {
                            Submitted::Active => self.request_install(now, queue),
                            Submitted::Deferred(act) => {
                                queue.schedule_at(act, Ev::Activate);
                                if !out.shed.is_empty() && self.rm.jobs_in_system() > 0 {
                                    self.request_install(now, queue);
                                }
                            }
                        }
                    }
                    None => {
                        if !out.shed.is_empty() && self.rm.jobs_in_system() > 0 {
                            self.request_install(now, queue);
                        }
                    }
                }
            }
            Ev::Flush => {
                self.flush_pending = false;
                self.flush(now, queue);
            }
            Ev::Activate => {
                self.pre_command(now);
                if self.rm.activate_due(now) > 0 {
                    self.request_install(now, queue);
                }
            }
            Ev::Install => {
                self.install_pending = false;
                self.install(now, queue);
            }
            Ev::TaskStart { task, version } => {
                if self.armed.get(&task) != Some(&version) {
                    return Flow::Continue; // superseded plan
                }
                self.armed.remove(&task);
                self.pre_command(now);
                self.rm
                    .task_started(task, now)
                    .expect("armed starts are valid");
                let attempt = self.attempts.entry(task).or_insert(0);
                *attempt += 1;
                let attempt = *attempt;
                self.running.insert(task, attempt);
                let dur = self.exec_time[&task];
                let fate = match self.faults.as_mut() {
                    Some(fm) => fm.sample_attempt(),
                    None => AttemptOutcome::Success,
                };
                match fate {
                    AttemptOutcome::Success => {
                        queue.schedule_at(now + dur, Ev::TaskComplete { task, attempt });
                    }
                    AttemptOutcome::Fail { at_fraction } => {
                        let at = now + Self::scale(dur, at_fraction);
                        queue.schedule_at(at, Ev::TaskFail { task, attempt });
                    }
                    AttemptOutcome::Straggle { factor } => {
                        let stretched = Self::scale(dur, factor);
                        self.stragglers += 1;
                        if let Some(&job) = self.task_job.get(&task) {
                            self.fault_jobs.insert(job);
                        }
                        // The manager plans around the stretched occupancy.
                        self.pre_command(now);
                        self.rm
                            .task_duration_revised(task, stretched)
                            .expect("task just started");
                        queue.schedule_at(now + stretched, Ev::TaskComplete { task, attempt });
                        self.request_install(now, queue);
                    }
                }
            }
            Ev::TaskComplete { task, attempt } => {
                if self.running.get(&task) != Some(&attempt) {
                    return Flow::Continue; // attempt superseded
                }
                self.running.remove(&task);
                self.exec_time.remove(&task);
                self.task_job.remove(&task);
                self.attempts.remove(&task);
                self.pre_command(now);
                if let Some(done) = self
                    .rm
                    .task_completed(task, now)
                    .expect("live attempt completes a running task")
                {
                    self.completions.push(JobOutcome {
                        job: done.job,
                        earliest_start: done.earliest_start,
                        completion: done.completion,
                        deadline: done.deadline,
                        late: done.late,
                    });
                    if self.reschedule_on_completion && self.rm.jobs_in_system() > 0 {
                        self.request_install(now, queue);
                    }
                }
            }
            Ev::TaskFail { task, attempt } => {
                if self.running.get(&task) != Some(&attempt) {
                    return Flow::Continue; // attempt superseded
                }
                self.running.remove(&task);
                if let Some(&job) = self.task_job.get(&task) {
                    self.fault_jobs.insert(job);
                }
                self.pre_command(now);
                match self
                    .rm
                    .task_failed(task, now)
                    .expect("live attempt fails a running task")
                {
                    FailureAction::Requeued { .. } => {
                        self.request_install(now, queue);
                    }
                    FailureAction::JobAbandoned(ab) => {
                        self.jobs_abandoned += 1;
                        self.forget_job(&ab);
                        if self.rm.jobs_in_system() > 0 {
                            self.request_install(now, queue);
                        }
                    }
                }
            }
            Ev::ResourceDown { resource, up_after } => {
                if self.drained() {
                    // Workload is done; a late crash has nothing to affect
                    // and re-arming the renewal would keep the run alive.
                    return Flow::Continue;
                }
                self.pre_command(now);
                match self.rm.resource_down(resource, now) {
                    Ok(interrupted) => {
                        self.resource_crashes += 1;
                        for t in &interrupted {
                            self.running.remove(t);
                            if let Some(&job) = self.task_job.get(t) {
                                self.fault_jobs.insert(job);
                            }
                        }
                        let repair = up_after.unwrap_or_else(|| {
                            self.faults
                                .as_mut()
                                .expect("random crashes imply a fault model")
                                .sample_repair_time()
                        });
                        queue.schedule_at(now + repair, Ev::ResourceUp { resource });
                        self.request_install(now, queue);
                    }
                    // A scheduled outage can overlap a random crash (or two
                    // overlapping windows); the resource is already down and
                    // already has a recovery pending — ignore the duplicate.
                    Err(_) => return Flow::Continue,
                }
            }
            Ev::ResourceUp { resource } => {
                self.pre_command(now);
                self.rm
                    .resource_up(resource, now)
                    .expect("resource was marked down by the matching crash");
                if self.rm.jobs_in_system() > 0 {
                    self.request_install(now, queue);
                }
                // Re-arm the renewal process while there is work left.
                if !self.drained() {
                    if let Some(ttf) = self
                        .faults
                        .as_mut()
                        .and_then(|f| f.sample_time_to_failure())
                    {
                        queue.schedule_at(
                            now + ttf,
                            Ev::ResourceDown {
                                resource,
                                up_after: None,
                            },
                        );
                    }
                }
            }
        }
        Flow::Continue
    }
}

/// Outcome of one job in a detailed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOutcome {
    /// The job.
    pub job: workload::JobId,
    /// Earliest start `s_j`.
    pub earliest_start: SimTime,
    /// Completion time.
    pub completion: SimTime,
    /// Deadline.
    pub deadline: SimTime,
    /// Whether the deadline was missed.
    pub late: bool,
}

/// Run MRCP-RM over `jobs` (arrival-ordered) on `resources` and collect the
/// paper's metrics. The run drains: every job completes or (under fault
/// injection) is abandoned after exhausting its retry budget.
pub fn simulate(cfg: &SimConfig, resources: &[Resource], jobs: Vec<Job>) -> RunMetrics {
    simulate_detailed(cfg, resources, jobs).0
}

/// Like [`simulate`] but also returns the per-job outcomes in completion
/// order.
pub fn simulate_detailed(
    cfg: &SimConfig,
    resources: &[Resource],
    jobs: Vec<Job>,
) -> (RunMetrics, Vec<JobOutcome>) {
    let (metrics, outcomes, _) = simulate_with(cfg, resources, jobs, |mgr_cfg| {
        MrcpRm::new(mgr_cfg, resources.to_vec())
    });
    (metrics, outcomes)
}

/// Run the simulation against any [`ResourceManager`] — the federation
/// layer plugs in here. `build` receives the effective manager
/// configuration (with the fault-injection retry budget already applied)
/// and constructs the manager over its own view of `resources`; the
/// manager is handed back after the run so callers can read
/// implementation-specific metrics off it.
pub fn simulate_with<M, F>(
    cfg: &SimConfig,
    resources: &[Resource],
    jobs: Vec<Job>,
    build: F,
) -> (RunMetrics, Vec<JobOutcome>, M)
where
    M: ResourceManager,
    F: FnOnce(MrcpConfig) -> M,
{
    cfg.faults.validate().expect("invalid fault config");
    if let Some(ing) = &cfg.ingest {
        assert!(ing.max_batch >= 1, "ingest.max_batch must be >= 1");
        assert!(
            ing.max_linger >= SimTime::ZERO,
            "ingest.max_linger must be non-negative"
        );
    }
    let n = jobs.len();
    let mut engine: Engine<Ev> = Engine::new();
    for (i, j) in jobs.iter().enumerate() {
        engine.queue_mut().schedule_at(j.arrival, Ev::Arrival(i));
    }
    let mut mgr_cfg = cfg.manager;
    let faults = if cfg.faults.is_active() {
        mgr_cfg.retry_budget = cfg.faults.retry_budget;
        let rng = RngStreams::new(cfg.fault_seed).stream("faults");
        Some(FaultModel::new(cfg.faults.clone(), rng))
    } else {
        None
    };
    // Manager-crash injection state: fixed points sorted descending so
    // the smallest pending index sits at the back, plus the renewal
    // process armed from its own RNG stream.
    let mut crash_at = cfg.manager_crashes.at_commands.clone();
    crash_at.sort_unstable_by(|a, b| b.cmp(a));
    crash_at.dedup();
    let crash_mttf_s = cfg
        .manager_crashes
        .mttf
        .map(|t| t.as_secs_f64().max(1e-3))
        .unwrap_or(0.0);
    let (crash_next, crash_rng) = match cfg.manager_crashes.mttf {
        Some(_) => {
            let mut rng = RngStreams::new(cfg.manager_crashes.seed).stream("manager-crashes");
            let gap = workload::dist::Exponential::new(1.0 / crash_mttf_s).sample(&mut rng);
            (
                Some(SimTime::from_secs_f64(gap).max(SimTime::from_millis(1))),
                Some(rng),
            )
        }
        None => (None, None),
    };
    let mut driver = Driver {
        rm: build(mgr_cfg),
        jobs: jobs.into_iter().map(Some).collect(),
        total_jobs: n,
        version: 0,
        armed: HashMap::new(),
        exec_time: HashMap::new(),
        task_job: HashMap::new(),
        running: HashMap::new(),
        attempts: HashMap::new(),
        fault_jobs: HashSet::new(),
        faults,
        stragglers: 0,
        resource_crashes: 0,
        jobs_abandoned: 0,
        crash_at,
        commands: 0,
        crash_next,
        crash_rng,
        crash_mttf_s,
        manager_crashes: 0,
        completions: Vec::with_capacity(n),
        arrived: 0,
        overhead: cfg.overhead,
        install_pending: false,
        reschedule_on_completion: cfg.reschedule_on_completion,
        ingest: cfg.ingest,
        ingest_buf: Vec::new(),
        busy_until: SimTime::ZERO,
        flush_pending: false,
    };
    // Arm the fault processes: deterministic outage windows, then the
    // first crash of each resource's renewal process.
    for o in &cfg.faults.scheduled_outages {
        engine.queue_mut().schedule_at(
            o.at,
            Ev::ResourceDown {
                resource: o.resource,
                up_after: Some(o.duration),
            },
        );
    }
    if let Some(fm) = driver.faults.as_mut() {
        for r in resources {
            if let Some(ttf) = fm.sample_time_to_failure() {
                engine.queue_mut().schedule_at(
                    ttf,
                    Ev::ResourceDown {
                        resource: r.id,
                        up_after: None,
                    },
                );
            }
        }
    }
    let end = engine.run(&mut driver);

    let stats = driver.rm.stats();
    let completed = driver.completions.len();
    // Completion order is by completion time (events fire in time order).
    let measured_slice = &driver.completions[cfg.warmup_jobs.min(completed)..];
    let measured = measured_slice.len();
    let late = measured_slice.iter().filter(|c| c.late).count();
    let late_due_to_faults = measured_slice
        .iter()
        .filter(|c| c.late && driver.fault_jobs.contains(&c.job))
        .count();
    let mut turnarounds = desim::stats::Tally::new();
    for c in measured_slice {
        turnarounds.push((c.completion - c.earliest_start).as_secs_f64());
    }

    let metrics = RunMetrics {
        arrived: driver.arrived,
        completed,
        measured,
        late,
        p_late: if measured > 0 {
            late as f64 / measured as f64
        } else {
            0.0
        },
        mean_turnaround_s: turnarounds.mean(),
        p95_turnaround_s: turnarounds.quantile(0.95).unwrap_or(0.0),
        max_turnaround_s: turnarounds.max().unwrap_or(0.0),
        o_per_job_s: if completed > 0 {
            stats.total_solve.as_secs_f64() / completed as f64
        } else {
            0.0
        },
        invocations: stats.invocations,
        mean_nodes_per_round: if stats.invocations > 0 {
            stats.total_nodes as f64 / stats.invocations as f64
        } else {
            0.0
        },
        max_tasks_in_model: stats.max_tasks_in_model,
        end_time_s: end.as_secs_f64(),
        tasks_failed: stats.tasks_failed,
        tasks_requeued: stats.tasks_requeued,
        stragglers: driver.stragglers,
        resource_crashes: driver.resource_crashes,
        jobs_abandoned: driver.jobs_abandoned,
        late_due_to_faults,
        degraded_rounds: stats.degraded_rounds,
        failed_rounds: stats.failed_rounds,
        warm_rounds: stats.warm_rounds,
        cache_invalidations: stats.cache_invalidations,
        jobs_rejected: stats.jobs_rejected,
        jobs_renegotiated: stats.jobs_renegotiated,
        jobs_shed: stats.jobs_shed,
        max_queue_depth: stats.max_queue_depth,
        budget_adaptations: stats.budget_adaptations,
        max_round_latency_s: stats.max_round_solve.as_secs_f64(),
        manager_crashes: driver.manager_crashes,
    };
    (metrics, driver.completions, driver.rm)
}

/// Invariants the long-horizon soak run must keep (the overload-hardening
/// acceptance bounds: bounded queue, bounded per-round latency, no
/// livelock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakLimits {
    /// The queue-depth high-water mark must not exceed this.
    pub max_queue_depth: usize,
    /// No single scheduling round may take longer than this (wall clock).
    pub max_round_latency: Duration,
    /// The system must be empty within this long after the last arrival
    /// (livelock / unbounded-backlog guard).
    pub max_drain: SimTime,
}

impl Default for SoakLimits {
    fn default() -> Self {
        SoakLimits {
            max_queue_depth: 200,
            max_round_latency: Duration::from_secs(2),
            max_drain: SimTime::from_secs(3_600),
        }
    }
}

/// Outcome of a soak run: the metrics plus every bound that was violated
/// (empty = the run stayed within [`SoakLimits`]).
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Metrics of the underlying run.
    pub metrics: RunMetrics,
    /// Human-readable description of each violated bound.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// True when every soak invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run a long-horizon simulation and check the overload invariants: the
/// queue depth stays bounded, no scheduling round exceeds the latency
/// ceiling, the system drains within `max_drain` of the last arrival, and
/// every arrival is accounted for (completed, rejected, shed, or
/// abandoned — nothing lost, nothing stuck).
pub fn soak(
    cfg: &SimConfig,
    resources: &[Resource],
    jobs: Vec<Job>,
    limits: &SoakLimits,
) -> SoakReport {
    let last_arrival = jobs
        .iter()
        .map(|j| j.arrival)
        .max()
        .unwrap_or(SimTime::ZERO);
    let (metrics, _) = simulate_detailed(cfg, resources, jobs);
    let mut violations = Vec::new();
    if metrics.max_queue_depth > limits.max_queue_depth {
        violations.push(format!(
            "queue depth peaked at {} (limit {})",
            metrics.max_queue_depth, limits.max_queue_depth
        ));
    }
    let ceiling = limits.max_round_latency.as_secs_f64();
    if metrics.max_round_latency_s > ceiling {
        violations.push(format!(
            "a scheduling round took {:.3}s (limit {:.3}s)",
            metrics.max_round_latency_s, ceiling
        ));
    }
    let drain = metrics.end_time_s - last_arrival.as_secs_f64();
    if drain > limits.max_drain.as_secs_f64() {
        violations.push(format!(
            "system took {:.0}s after the last arrival to drain (limit {:.0}s)",
            drain,
            limits.max_drain.as_secs_f64()
        ));
    }
    let accounted = metrics.completed as u64
        + metrics.jobs_rejected
        + metrics.jobs_shed
        + metrics.jobs_abandoned as u64;
    if accounted != metrics.arrived as u64 {
        violations.push(format!(
            "conservation broken: {} arrived but {} accounted \
             ({} completed + {} rejected + {} shed + {} abandoned)",
            metrics.arrived,
            accounted,
            metrics.completed,
            metrics.jobs_rejected,
            metrics.jobs_shed,
            metrics.jobs_abandoned
        ));
    }
    SoakReport {
        metrics,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use workload::{SyntheticConfig, SyntheticGenerator};

    fn small_workload(n: usize, lambda: f64, seed: u64) -> (Vec<Resource>, Vec<Job>) {
        let cfg = SyntheticConfig {
            maps_per_job: (1, 6),
            reduces_per_job: (1, 3),
            e_max: 10,
            lambda,
            resources: 4,
            map_capacity: 2,
            reduce_capacity: 2,
            s_max: 100,
            ..Default::default()
        };
        let cluster = cfg.cluster();
        let mut gen = SyntheticGenerator::new(cfg, StdRng::seed_from_u64(seed));
        (cluster, gen.take_jobs(n))
    }

    #[test]
    fn every_job_completes() {
        let (cluster, jobs) = small_workload(30, 0.05, 1);
        let m = simulate(&SimConfig::default(), &cluster, jobs);
        assert_eq!(m.arrived, 30);
        assert_eq!(m.completed, 30);
        assert_eq!(m.measured, 30);
        assert!(m.invocations >= 1);
        assert!(m.end_time_s > 0.0);
    }

    #[test]
    fn loose_deadlines_yield_few_late_jobs() {
        // Very light load with generous multiplier → P near 0.
        let (cluster, jobs) = small_workload(40, 0.005, 2);
        let m = simulate(&SimConfig::default(), &cluster, jobs);
        assert!(
            m.p_late <= 0.10,
            "light load should rarely miss deadlines, got P={}",
            m.p_late
        );
        assert!(m.mean_turnaround_s > 0.0);
    }

    #[test]
    fn warmup_discards_early_completions() {
        let (cluster, jobs) = small_workload(30, 0.05, 3);
        let all = simulate(&SimConfig::default(), &cluster, jobs.clone());
        let cfg = SimConfig {
            warmup_jobs: 10,
            ..Default::default()
        };
        let warm = simulate(&cfg, &cluster, jobs);
        assert_eq!(all.measured, 30);
        assert_eq!(warm.measured, 20);
        assert_eq!(all.completed, warm.completed);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let (cluster, jobs) = small_workload(25, 0.05, 4);
        let a = simulate(&SimConfig::default(), &cluster, jobs.clone());
        let b = simulate(&SimConfig::default(), &cluster, jobs);
        assert_eq!(a.late, b.late);
        assert_eq!(a.mean_turnaround_s, b.mean_turnaround_s);
        assert_eq!(a.invocations, b.invocations);
    }

    #[test]
    fn same_seed_gives_bit_identical_metrics() {
        // The full struct, not selected fields: every deterministic field
        // must agree bit-for-bit across two runs on the same inputs
        // (wall-clock-derived fields are zeroed by the signature).
        let (cluster, jobs) = small_workload(25, 0.05, 8);
        let a = simulate(&SimConfig::default(), &cluster, jobs.clone());
        let b = simulate(&SimConfig::default(), &cluster, jobs);
        assert_eq!(a.deterministic_signature(), b.deterministic_signature());
    }

    #[test]
    fn fixed_overhead_delays_first_start() {
        // One job, empty cluster: with a 5s busy period the schedule
        // installs at t=5, so the task starts then (instead of t=0).
        let (cluster, jobs) = small_workload(1, 0.05, 9);
        let inst = simulate(&SimConfig::default(), &cluster, jobs.clone());
        let cfg = SimConfig {
            overhead: OverheadModel::Fixed(SimTime::from_secs(5)),
            ..Default::default()
        };
        let delayed = simulate(&cfg, &cluster, jobs);
        assert_eq!(delayed.completed, 1);
        assert!(
            delayed.end_time_s >= inst.end_time_s + 5.0 - 1e-9,
            "busy period must push the schedule: {} vs {}",
            delayed.end_time_s,
            inst.end_time_s
        );
    }

    #[test]
    fn overhead_batches_simultaneous_arrivals() {
        // Many jobs arriving fast + a long busy period → far fewer
        // scheduling rounds than arrivals (the paper's job queue).
        let (cluster, jobs) = small_workload(20, 10.0, 10);
        let cfg = SimConfig {
            overhead: OverheadModel::Fixed(SimTime::from_secs(30)),
            ..Default::default()
        };
        let m = simulate(&cfg, &cluster, jobs);
        assert_eq!(m.completed, 20);
        assert!(
            m.invocations < 20,
            "batching should coalesce rounds, got {}",
            m.invocations
        );
    }

    #[test]
    fn per_task_overhead_scales_with_model() {
        let (cluster, jobs) = small_workload(5, 0.05, 11);
        let cfg = SimConfig {
            overhead: OverheadModel::PerTask {
                base: SimTime::from_millis(100),
                per_task: SimTime::from_millis(50),
            },
            ..Default::default()
        };
        let m = simulate(&cfg, &cluster, jobs);
        assert_eq!(m.completed, 5, "run still drains under scaled overhead");
    }

    #[test]
    fn reschedule_on_completion_drains_and_matches_quality() {
        let (cluster, jobs) = small_workload(25, 0.05, 12);
        let base = simulate(&SimConfig::default(), &cluster, jobs.clone());
        let cfg = SimConfig {
            reschedule_on_completion: true,
            ..Default::default()
        };
        let extra = simulate(&cfg, &cluster, jobs);
        assert_eq!(extra.completed, 25);
        assert!(
            extra.invocations >= base.invocations,
            "completion replans add rounds: {} vs {}",
            extra.invocations,
            base.invocations
        );
        // With exact execution times replanning cannot make things worse
        // by much; allow small divergence from search-order effects.
        assert!((extra.late as i64 - base.late as i64).abs() <= 2);
    }

    #[test]
    fn split_and_full_paths_both_drain() {
        let (cluster, jobs) = small_workload(15, 0.05, 5);
        let mut cfg = SimConfig::default();
        cfg.manager.use_split = false;
        let full = simulate(&cfg, &cluster, jobs.clone());
        let split = simulate(&SimConfig::default(), &cluster, jobs);
        assert_eq!(full.completed, 15);
        assert_eq!(split.completed, 15);
    }

    /// The [`RunMetrics::deterministic_signature`] contract: exactly the
    /// wall-clock observations (`o_per_job_s`, `mean_nodes_per_round`,
    /// `budget_adaptations`, `max_round_latency_s`) and the injected-
    /// perturbation count (`manager_crashes`) are zeroed; every other
    /// field passes through bit-for-bit. The signature body destructures
    /// `RunMetrics` exhaustively, so a new field cannot be added without
    /// extending this classification.
    #[test]
    fn deterministic_signature_zeroes_exactly_the_nondeterministic_fields() {
        // Every field nonzero, so an unintended zeroing (or passthrough)
        // cannot hide.
        let m = RunMetrics {
            arrived: 1,
            completed: 2,
            measured: 3,
            late: 4,
            p_late: 0.5,
            mean_turnaround_s: 6.0,
            p95_turnaround_s: 7.0,
            max_turnaround_s: 8.0,
            o_per_job_s: 9.0,
            invocations: 10,
            mean_nodes_per_round: 11.0,
            max_tasks_in_model: 12,
            end_time_s: 13.0,
            tasks_failed: 14,
            tasks_requeued: 15,
            stragglers: 16,
            resource_crashes: 17,
            jobs_abandoned: 18,
            late_due_to_faults: 19,
            degraded_rounds: 20,
            failed_rounds: 21,
            jobs_rejected: 22,
            jobs_renegotiated: 23,
            jobs_shed: 24,
            max_queue_depth: 25,
            budget_adaptations: 26,
            max_round_latency_s: 27.0,
            warm_rounds: 28,
            cache_invalidations: 29,
            manager_crashes: 30,
        };
        let expected = RunMetrics {
            o_per_job_s: 0.0,
            mean_nodes_per_round: 0.0,
            budget_adaptations: 0,
            max_round_latency_s: 0.0,
            manager_crashes: 0,
            ..m
        };
        assert_eq!(m.deterministic_signature(), expected);
        // Idempotent: a signature is its own signature.
        assert_eq!(expected.deterministic_signature(), expected);
    }

    /// Against a manager with no durability layer, injected crashes are
    /// no-ops: nothing is recovered (there is nothing to recover from)
    /// and the run is untouched.
    #[test]
    fn crash_injection_is_noop_for_non_durable_managers() {
        let (cluster, jobs) = small_workload(10, 0.05, 9);
        let clean = simulate(&SimConfig::default(), &cluster, jobs.clone());
        let cfg = SimConfig {
            manager_crashes: ManagerCrashConfig {
                at_commands: vec![0, 3, 10],
                mttf: Some(SimTime::from_secs(30)),
                seed: 5,
            },
            ..Default::default()
        };
        let crashed = simulate(&cfg, &cluster, jobs);
        assert_eq!(crashed.manager_crashes, 0);
        assert_eq!(
            clean.deterministic_signature(),
            crashed.deterministic_signature()
        );
    }

    mod ingest {
        //! The batched arrival-coalescing path (the async ingest front
        //! door's simulation-side contract).
        use super::*;

        #[test]
        fn batch_size_one_is_bit_identical_to_legacy_path() {
            let (cluster, jobs) = small_workload(25, 0.05, 31);
            let legacy = simulate(&SimConfig::default(), &cluster, jobs.clone());
            let cfg = SimConfig {
                ingest: Some(IngestConfig {
                    max_batch: 1,
                    max_linger: SimTime::from_secs(5),
                }),
                ..Default::default()
            };
            let batched = simulate(&cfg, &cluster, jobs);
            // Full-struct equality modulo wall-clock fields: at batch size
            // 1 every flush is inline and performs the legacy command
            // sequence verbatim, so even `invocations` and `end_time_s`
            // must agree exactly.
            assert_eq!(
                legacy.deterministic_signature(),
                batched.deterministic_signature()
            );
        }

        #[test]
        fn burst_coalesces_into_fewer_scheduling_rounds() {
            // Fast arrivals + a large batch window → far fewer rounds than
            // arrivals, while every job still completes.
            let (cluster, jobs) = small_workload(20, 10.0, 32);
            let legacy = simulate(&SimConfig::default(), &cluster, jobs.clone());
            let cfg = SimConfig {
                ingest: Some(IngestConfig {
                    max_batch: 20,
                    max_linger: SimTime::from_secs(10),
                }),
                ..Default::default()
            };
            let batched = simulate(&cfg, &cluster, jobs);
            assert_eq!(batched.completed, 20);
            assert!(
                batched.invocations < legacy.invocations,
                "coalescing must cut rounds: {} vs {}",
                batched.invocations,
                legacy.invocations
            );
        }

        #[test]
        fn same_timestamp_burst_matches_one_at_a_time_submission() {
            // The satellite determinism anchor: N jobs arriving at the
            // same instant, ingested through the batched path, yield the
            // same signature as the same jobs submitted one-at-a-time at
            // identical timestamps through the legacy path. A busy-period
            // overhead model makes the legacy path coalesce its installs
            // too, so both run exactly one round for the burst — and
            // since `submit_batch` is defined as the sequential
            // composition of per-job submissions, the manager sees the
            // identical command stream.
            let (cluster, mut jobs) = small_workload(12, 0.05, 33);
            for j in &mut jobs {
                j.arrival = SimTime::ZERO;
            }
            let overhead = OverheadModel::Fixed(SimTime::from_millis(10));
            let legacy = simulate(
                &SimConfig {
                    overhead,
                    ..Default::default()
                },
                &cluster,
                jobs.clone(),
            );
            let batched = simulate(
                &SimConfig {
                    overhead,
                    ingest: Some(IngestConfig {
                        max_batch: 12,
                        max_linger: SimTime::from_secs(1),
                    }),
                    ..Default::default()
                },
                &cluster,
                jobs,
            );
            assert_eq!(
                legacy.deterministic_signature(),
                batched.deterministic_signature()
            );
            assert_eq!(legacy.invocations, batched.invocations);
        }

        #[test]
        fn linger_bounds_buffering_delay() {
            // One lone job never fills the batch; the linger timer must
            // flush it after exactly max_linger. Pin the job's earliest
            // start to its arrival so the flush delay shows up in the
            // completion time instead of hiding inside a deferral window.
            let (cluster, mut jobs) = small_workload(1, 0.05, 34);
            jobs[0].earliest_start = jobs[0].arrival;
            let legacy = simulate(&SimConfig::default(), &cluster, jobs.clone());
            let cfg = SimConfig {
                ingest: Some(IngestConfig {
                    max_batch: 64,
                    max_linger: SimTime::from_secs(5),
                }),
                ..Default::default()
            };
            let batched = simulate(&cfg, &cluster, jobs);
            assert_eq!(batched.completed, 1);
            assert!(
                (batched.end_time_s - (legacy.end_time_s + 5.0)).abs() < 1e-9,
                "flush after the 5s linger: {} vs {}",
                batched.end_time_s,
                legacy.end_time_s
            );
        }

        #[test]
        fn batched_ingest_is_deterministic_per_seed() {
            let (cluster, jobs) = small_workload(25, 1.0, 35);
            let cfg = SimConfig {
                ingest: Some(IngestConfig::default()),
                ..Default::default()
            };
            let a = simulate(&cfg, &cluster, jobs.clone());
            let b = simulate(&cfg, &cluster, jobs);
            assert_eq!(a.deterministic_signature(), b.deterministic_signature());
        }
    }

    mod overload {
        //! The overload-hardening paths: admission control, backpressure,
        //! the budget controller, and the soak invariants.
        use super::*;
        use crate::admission::{AdmissionConfig, AdmissionPolicy};
        use crate::manager::BudgetController;
        use workload::ArrivalConfig;

        /// A small cluster driven well past saturation: arrivals far
        /// faster than the slots can absorb, with tight SLAs.
        fn overloaded(n: usize, lambda: f64, seed: u64) -> (Vec<Resource>, Vec<Job>) {
            let cfg = SyntheticConfig {
                maps_per_job: (2, 8),
                reduces_per_job: (1, 3),
                e_max: 20,
                lambda,
                resources: 2,
                map_capacity: 2,
                reduce_capacity: 2,
                p_future_start: 0.0,
                s_max: 1,
                deadline_multiplier: 1.5,
                ..Default::default()
            };
            let cluster = cfg.cluster();
            let mut gen = SyntheticGenerator::new(cfg, StdRng::seed_from_u64(seed));
            (cluster, gen.take_jobs(n))
        }

        #[test]
        fn strict_admission_rejects_past_saturation_and_still_drains() {
            let (cluster, jobs) = overloaded(40, 2.0, 21);
            let mut cfg = SimConfig::default();
            cfg.manager.admission = AdmissionConfig {
                policy: AdmissionPolicy::Strict,
                max_pending_jobs: None,
            };
            let m = simulate(&cfg, &cluster, jobs);
            assert_eq!(m.arrived, 40);
            assert!(m.jobs_rejected > 0, "overload must trigger rejections");
            assert!(m.completed < m.arrived);
            assert_eq!(
                m.completed as u64 + m.jobs_rejected + m.jobs_shed,
                40,
                "every arrival completes, is rejected, or is shed"
            );
        }

        #[test]
        fn strict_admission_protects_admitted_jobs() {
            let (cluster, jobs) = overloaded(40, 2.0, 24);
            let mut strict = SimConfig::default();
            strict.manager.admission = AdmissionConfig {
                policy: AdmissionPolicy::Strict,
                max_pending_jobs: None,
            };
            let gated = simulate(&strict, &cluster, jobs.clone());
            let open = simulate(&SimConfig::default(), &cluster, jobs);
            // Turning away infeasible work keeps the SLAs of what remains
            // no worse than letting everything pile in.
            assert!(
                gated.p_late <= open.p_late,
                "strict P={} vs best-effort P={}",
                gated.p_late,
                open.p_late
            );
        }

        #[test]
        fn renegotiation_relaxes_deadlines_instead_of_rejecting() {
            let (cluster, jobs) = overloaded(30, 2.0, 25);
            let mut cfg = SimConfig::default();
            cfg.manager.admission = AdmissionConfig {
                policy: AdmissionPolicy::Renegotiate,
                max_pending_jobs: None,
            };
            let m = simulate(&cfg, &cluster, jobs);
            assert!(
                m.jobs_renegotiated > 0,
                "overload must trigger renegotiation"
            );
            assert_eq!(
                m.completed as u64 + m.jobs_rejected,
                m.arrived as u64,
                "renegotiated jobs stay in the system and finish"
            );
        }

        #[test]
        fn queue_bound_caps_depth_via_shedding() {
            let (cluster, jobs) = overloaded(30, 5.0, 22);
            let mut cfg = SimConfig::default();
            cfg.manager.admission = AdmissionConfig {
                policy: AdmissionPolicy::BestEffort,
                max_pending_jobs: Some(8),
            };
            let m = simulate(&cfg, &cluster, jobs);
            assert!(
                m.max_queue_depth <= 8,
                "bounded queue, got depth {}",
                m.max_queue_depth
            );
            assert!(
                m.jobs_shed + m.jobs_rejected > 0,
                "overflow must be absorbed"
            );
            assert_eq!(m.completed as u64 + m.jobs_rejected + m.jobs_shed, 30);
        }

        #[test]
        fn budget_controller_adapts_under_load() {
            let (cluster, jobs) = overloaded(25, 2.0, 26);
            let mut cfg = SimConfig::default();
            // A zero ceiling forces a shrink on every round — the
            // adaptation path must engage and the run must still drain.
            cfg.manager.controller = Some(BudgetController::with_ceiling(Duration::ZERO));
            let m = simulate(&cfg, &cluster, jobs);
            assert_eq!(m.completed, 25);
            assert!(m.budget_adaptations > 0, "controller must have acted");
        }

        #[test]
        fn soak_with_protection_stays_within_bounds_under_bursts() {
            let cfg = SyntheticConfig {
                maps_per_job: (1, 6),
                reduces_per_job: (1, 3),
                e_max: 10,
                lambda: 0.02,
                resources: 4,
                map_capacity: 2,
                reduce_capacity: 2,
                p_future_start: 0.0,
                s_max: 1,
                deadline_multiplier: 2.0,
                arrival: ArrivalConfig::mmpp(0.5, 120.0, 20.0),
                cells: Default::default(),
                solver: Default::default(),
            };
            let cluster = cfg.cluster();
            let mut gen = SyntheticGenerator::new(cfg, StdRng::seed_from_u64(27));
            let jobs = gen.take_jobs(60);
            let mut sim = SimConfig::default();
            sim.manager.admission = AdmissionConfig {
                policy: AdmissionPolicy::Strict,
                max_pending_jobs: Some(32),
            };
            sim.manager.controller = Some(BudgetController::default());
            let limits = SoakLimits {
                max_queue_depth: 32,
                max_round_latency: Duration::from_secs(5),
                max_drain: SimTime::from_secs(3_600),
            };
            let report = soak(&sim, &cluster, jobs, &limits);
            assert!(report.ok(), "soak violations: {:?}", report.violations);
            assert_eq!(report.metrics.arrived, 60);
        }

        #[test]
        fn soak_report_flags_violated_bounds() {
            let (cluster, jobs) = small_workload(10, 0.05, 23);
            let limits = SoakLimits {
                max_queue_depth: 0,
                ..Default::default()
            };
            let report = soak(&SimConfig::default(), &cluster, jobs, &limits);
            assert!(!report.ok());
            assert!(
                report.violations.iter().any(|v| v.contains("queue depth")),
                "{:?}",
                report.violations
            );
        }
    }
}
