//! Job ordering strategies (paper §VI.B).
//!
//! MRCP-RM "was configured to use three job ordering strategies, which
//! determines the job MRCP-RM attempts to map and schedule first": job id,
//! earliest deadline first, and least laxity first. The strategy becomes
//! the per-job search priority handed to the CP solver's heuristics (it
//! never affects completeness, only which solutions are found first under
//! a budget). The paper found EDF marginally best and uses it in all
//! reported figures.

use desim::SimTime;
use workload::Job;

/// Which job the scheduler attempts to place first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobOrdering {
    /// In submission (job id) order.
    JobId,
    /// Earliest deadline first — the paper's reported configuration.
    #[default]
    Edf,
    /// Least laxity first: `L_j = d_j − s_j − Σ e_t` (paper's definition,
    /// using the job's total execution time).
    LeastLaxity,
}

impl JobOrdering {
    /// The search priority for `job` (lower = placed first).
    pub fn priority(self, job: &Job) -> i64 {
        match self {
            JobOrdering::JobId => job.id.0 as i64,
            JobOrdering::Edf => job.deadline.as_millis(),
            JobOrdering::LeastLaxity => self.laxity(job).as_millis(),
        }
    }

    /// The paper's laxity: `d_j − s_j − Σ_t e_t`.
    fn laxity(self, job: &Job) -> SimTime {
        job.deadline - job.earliest_start - job.total_work()
    }

    /// All strategies, for sweeps and ablations.
    pub fn all() -> [JobOrdering; 3] {
        [
            JobOrdering::JobId,
            JobOrdering::Edf,
            JobOrdering::LeastLaxity,
        ]
    }

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            JobOrdering::JobId => "job-id",
            JobOrdering::Edf => "edf",
            JobOrdering::LeastLaxity => "least-laxity",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;
    use workload::{JobId, Task, TaskId, TaskKind};

    fn job(id: u32, s: i64, d: i64, work: i64) -> Job {
        Job {
            id: JobId(id),
            arrival: SimTime::from_secs(s),
            earliest_start: SimTime::from_secs(s),
            deadline: SimTime::from_secs(d),
            map_tasks: vec![Task {
                id: TaskId(id),
                job: JobId(id),
                kind: TaskKind::Map,
                exec_time: SimTime::from_secs(work),
                req: 1,
            }],
            reduce_tasks: vec![],
            precedences: vec![],
        }
    }

    #[test]
    fn job_id_orders_by_submission() {
        let a = job(3, 0, 100, 1);
        let b = job(7, 0, 50, 1);
        let o = JobOrdering::JobId;
        assert!(o.priority(&a) < o.priority(&b));
    }

    #[test]
    fn edf_orders_by_deadline() {
        let a = job(3, 0, 100, 1);
        let b = job(7, 0, 50, 1);
        let o = JobOrdering::Edf;
        assert!(o.priority(&b) < o.priority(&a));
    }

    #[test]
    fn least_laxity_accounts_for_work() {
        // Same deadline, different work: the heavier job has less slack.
        let light = job(0, 10, 100, 5);
        let heavy = job(1, 10, 100, 80);
        let o = JobOrdering::LeastLaxity;
        assert!(o.priority(&heavy) < o.priority(&light));
        // laxity of light: (100-10-5)s = 85s
        assert_eq!(o.priority(&light), SimTime::from_secs(85).as_millis());
    }

    #[test]
    fn default_is_edf() {
        assert_eq!(JobOrdering::default(), JobOrdering::Edf);
        assert_eq!(JobOrdering::all().len(), 3);
        assert_eq!(JobOrdering::Edf.name(), "edf");
    }
}
