//! # mrcp — the MapReduce Constraint Programming based Resource Manager
//!
//! The primary contribution of Lim, Majumdar & Ashwood-Smith (ICPP 2014):
//! a resource manager that performs matchmaking and scheduling of an **open
//! stream** of MapReduce jobs with SLAs (earliest start time, per-task
//! execution times, end-to-end deadline) by repeatedly building and solving
//! the Table 1 CP formulation.
//!
//! Crate layout, mapped to the paper:
//!
//! * [`manager`] — the MRCP-RM resource manager itself (Fig. 1 + the
//!   Table 2 algorithm): submit jobs, track started/completed tasks, and
//!   reschedule incrementally — pinning started-but-unfinished tasks and
//!   remapping everything else.
//! * [`modelmap`] — translation of the live system state into a
//!   [`cpsolve`] model (the role of the OPL model generation in §V.C).
//! * [`split`] — the §V.D performance optimization: solve scheduling on a
//!   single combined resource, then run the gap-minimizing matchmaking
//!   that distributes the schedule over the real resources.
//! * [`defer`] — the §V.E performance optimization: jobs whose earliest
//!   start time lies far in the future are parked and only enter the CP
//!   model shortly before they become runnable.
//! * [`admission`] — overload protection beyond the paper: SLA-aware
//!   admission control (EDF demand bound + greedy witness schedule),
//!   pending-queue backpressure, and the adaptive budget controller.
//! * [`ordering`] — the three job ordering strategies of §VI.B (job id,
//!   EDF, least laxity).
//! * [`closed`] — the closed-system batch mode of the authors' preliminary
//!   work: one solve over a fixed job set.
//! * [`sim_driver`] — MRCP-RM embedded in the [`desim`] engine for the
//!   open-system evaluation of §VI, producing the paper's metrics
//!   (`O`, `N`, `T`, `P`).

pub mod admission;
pub mod closed;
pub mod defer;
pub mod gantt;
pub mod manager;
pub mod modelmap;
pub mod ordering;
pub mod sim_driver;
pub mod split;

pub use admission::{AdmissionConfig, AdmissionDecision, AdmissionPolicy, RejectReason};
pub use manager::{
    AbandonedJob, AdmissionOutcome, BudgetController, FailureAction, JobCompletion, JobImage,
    ManagerError, ManagerImage, ManagerStats, MrcpConfig, MrcpRm, PlannedJob, RoundCacheImage,
    ScheduleEntry, SchedulingError, SolveBudget, TaskImage, TaskStatusImage,
};
pub use ordering::JobOrdering;
pub use sim_driver::{
    simulate, simulate_detailed, simulate_with, soak, IngestConfig, JobOutcome, ManagerCrashConfig,
    OverheadModel, ResourceManager, RunMetrics, SimConfig, SoakLimits, SoakReport,
};
