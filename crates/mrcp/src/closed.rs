//! Closed-system batch solving.
//!
//! The authors' preliminary work (\[12\] in the paper) evaluated the CP
//! formulation on a *closed* system: a fixed batch of jobs known up front,
//! solved once. This module exposes that mode directly — useful for
//! capacity planning (examples), for measuring pure solver behaviour
//! without the open-system machinery, and for the solver-budget ablation
//! benches.

use crate::modelmap::{build_model, JobInput, TaskInput};
use crate::ordering::JobOrdering;
use crate::split::split_solve;
use cpsolve::search::{solve, Outcome, SolveParams};
use desim::SimTime;
use workload::{Job, JobId, Resource, ResourceId, TaskId};

/// Result of a batch solve.
#[derive(Debug)]
pub struct ClosedOutcome {
    /// `(task, resource, start)` for every task.
    pub placements: Vec<(TaskId, ResourceId, SimTime)>,
    /// Jobs that miss their deadline under the schedule.
    pub late_jobs: Vec<JobId>,
    /// `Σ N_j`.
    pub objective: u32,
    /// Raw solver outcome.
    pub outcome: Outcome,
}

/// Map and schedule a fixed batch of jobs at time zero.
///
/// `use_split` selects the §V.D separated scheduling/matchmaking path.
pub fn solve_closed(
    resources: &[Resource],
    jobs: &[Job],
    ordering: JobOrdering,
    params: &SolveParams,
    use_split: bool,
) -> Result<ClosedOutcome, String> {
    let inputs: Vec<JobInput<'_>> = jobs
        .iter()
        .map(|job| JobInput {
            job,
            release: job.earliest_start,
            priority: ordering.priority(job),
            tasks: job
                .tasks()
                .map(|t| TaskInput {
                    id: t.id,
                    kind: t.kind,
                    exec_time: t.exec_time,
                    req: t.req,
                    pinned: None,
                })
                .collect(),
        })
        .collect();

    let (placements, outcome, objective) = if use_split {
        let s = split_solve(resources, &inputs, params)?;
        let obj = s.objective;
        (s.placements, s.outcome, obj)
    } else {
        let mm = build_model(resources, &inputs)?;
        let out = solve(&mm.model, params);
        let best = out.best.as_ref().ok_or("no schedule found")?;
        let placements: Vec<(TaskId, ResourceId, SimTime)> = mm
            .task_ids
            .iter()
            .enumerate()
            .map(|(i, &tid)| {
                (
                    tid,
                    mm.res_ids[best.resource[i].idx()],
                    SimTime::from_millis(best.starts[i]),
                )
            })
            .collect();
        let obj = best.objective;
        (placements, out, obj)
    };

    // Determine which jobs are late from the placements.
    let mut completion: std::collections::HashMap<JobId, SimTime> = Default::default();
    let exec: std::collections::HashMap<TaskId, (JobId, SimTime)> = jobs
        .iter()
        .flat_map(|j| j.tasks().map(|t| (t.id, (t.job, t.exec_time))))
        .collect();
    for &(tid, _, start) in &placements {
        let (job, dur) = exec[&tid];
        let end = start + dur;
        completion
            .entry(job)
            .and_modify(|c| *c = (*c).max(end))
            .or_insert(end);
    }
    let mut late_jobs: Vec<JobId> = jobs
        .iter()
        .filter(|j| completion.get(&j.id).copied().unwrap_or(SimTime::ZERO) > j.deadline)
        .map(|j| j.id)
        .collect();
    late_jobs.sort_unstable();
    debug_assert_eq!(late_jobs.len() as u32, objective);

    Ok(ClosedOutcome {
        placements,
        late_jobs,
        objective,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsolve::search::Status;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use workload::{SyntheticConfig, SyntheticGenerator};

    fn batch(n: usize) -> (Vec<Resource>, Vec<Job>) {
        let cfg = SyntheticConfig {
            maps_per_job: (1, 5),
            reduces_per_job: (1, 2),
            e_max: 10,
            lambda: 1.0, // arrivals irrelevant in closed mode
            resources: 4,
            map_capacity: 2,
            reduce_capacity: 2,
            p_future_start: 0.0,
            ..Default::default()
        };
        let cluster = cfg.cluster();
        let mut gen = SyntheticGenerator::new(cfg, StdRng::seed_from_u64(9));
        (cluster, gen.take_jobs(n))
    }

    #[test]
    fn closed_batch_solves_and_audits() {
        let (cluster, jobs) = batch(8);
        let out = solve_closed(
            &cluster,
            &jobs,
            JobOrdering::Edf,
            &SolveParams::default(),
            true,
        )
        .unwrap();
        let total_tasks: usize = jobs.iter().map(|j| j.task_count()).sum();
        assert_eq!(out.placements.len(), total_tasks);
        assert_eq!(out.late_jobs.len() as u32, out.objective);
    }

    #[test]
    fn split_and_full_agree_on_feasibility() {
        let (cluster, jobs) = batch(5);
        let split = solve_closed(
            &cluster,
            &jobs,
            JobOrdering::Edf,
            &SolveParams::default(),
            true,
        )
        .unwrap();
        let full = solve_closed(
            &cluster,
            &jobs,
            JobOrdering::Edf,
            &SolveParams::default(),
            false,
        )
        .unwrap();
        // Both paths produce verified schedules; with loose Table 3-style
        // deadlines both should find zero late jobs.
        assert_eq!(split.objective, 0);
        assert_eq!(full.objective, 0);
    }

    #[test]
    fn orderings_all_solve() {
        let (cluster, jobs) = batch(5);
        for o in JobOrdering::all() {
            let out = solve_closed(&cluster, &jobs, o, &SolveParams::default(), true).unwrap();
            assert!(
                matches!(out.outcome.status, Status::Optimal | Status::Feasible),
                "{o:?} failed"
            );
        }
    }
}
