//! ASCII Gantt rendering of schedules — a human-readable view of what the
//! solver installed, used by examples and debugging sessions.
//!
//! One row per `(resource, slot pool)`, time flowing right, each task drawn
//! as a span labelled with its job id. Rows are scaled to a fixed width so
//! long horizons stay readable.

use crate::manager::{ManagerError, ScheduleEntry};
use desim::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use workload::{Resource, TaskKind};

/// Narrowest chart [`render`] can lay out.
pub const MIN_WIDTH: usize = 20;

/// Render `entries` (plus already-running tasks if the caller includes
/// them) as an ASCII Gantt chart over `resources`, `width` characters wide.
///
/// Tasks are attributed to the map or reduce pool by `kinds` — a lookup
/// from task to kind the caller provides (the manager knows it; examples
/// can close over their job definitions).
///
/// Fails with [`ManagerError::ChartTooNarrow`] below [`MIN_WIDTH`] and
/// [`ManagerError::ScheduleOverCapacity`] when concurrent entries exceed a
/// resource's slot capacity (a plan no audit-passing round produces) —
/// render errors must not abort a chaos run.
pub fn render(
    resources: &[Resource],
    entries: &[ScheduleEntry],
    kinds: &dyn Fn(workload::TaskId) -> TaskKind,
    width: usize,
) -> Result<String, ManagerError> {
    if width < MIN_WIDTH {
        return Err(ManagerError::ChartTooNarrow {
            width,
            min: MIN_WIDTH,
        });
    }
    if entries.is_empty() {
        return Ok("(empty schedule)\n".into());
    }
    let t0 = entries
        .iter()
        .map(|e| e.start)
        .min()
        .unwrap_or(SimTime::ZERO);
    let t1 = entries.iter().map(|e| e.end).max().unwrap_or(SimTime::ZERO);
    let span = (t1 - t0).as_millis().max(1);
    let scale = |t: SimTime| -> usize {
        (((t - t0).as_millis() as f64 / span as f64) * (width as f64 - 1.0)).round() as usize
    };

    // Group entries per (resource, kind).
    let mut rows: BTreeMap<(u32, u8), Vec<&ScheduleEntry>> = BTreeMap::new();
    for e in entries {
        let kind = kinds(e.task);
        let key = (e.resource.0, matches!(kind, TaskKind::Reduce) as u8);
        rows.entry(key).or_default().push(e);
    }

    let mut out = String::new();
    let _ = writeln!(out, "gantt  {} .. {}  ({} tasks)", t0, t1, entries.len());
    for r in resources {
        for (kind_bit, kind_name, cap) in [
            (0u8, "map", r.map_capacity),
            (1u8, "reduce", r.reduce_capacity),
        ] {
            if cap == 0 {
                continue;
            }
            let Some(row_entries) = rows.get(&(r.id.0, kind_bit)) else {
                continue;
            };
            // Lay entries into `cap` lanes greedily by start time.
            let mut lanes: Vec<(i64, Vec<&ScheduleEntry>)> =
                (0..cap).map(|_| (i64::MIN, Vec::new())).collect();
            let mut sorted = row_entries.clone();
            sorted.sort_by_key(|e| (e.start, e.task));
            for e in sorted {
                let lane = lanes
                    .iter_mut()
                    .find(|(free_at, _)| *free_at <= e.start.as_millis())
                    .ok_or(ManagerError::ScheduleOverCapacity(e.task))?;
                lane.0 = e.end.as_millis();
                lane.1.push(e);
            }
            for (li, (_, lane)) in lanes.iter().enumerate() {
                let mut line = vec![b'.'; width];
                for e in lane {
                    let a = scale(e.start);
                    let b = scale(e.end).max(a + 1).min(width);
                    let label = format!("{}", e.job.0);
                    for (k, cell) in line[a..b].iter_mut().enumerate() {
                        *cell = if k < label.len() {
                            label.as_bytes()[k]
                        } else {
                            b'#'
                        };
                    }
                }
                // The row buffer only ever holds ASCII bytes.
                let row: String = line.iter().map(|&b| b as char).collect();
                let _ = writeln!(
                    out,
                    "{:>4} {:<6} {} |{}|",
                    r.id.to_string(),
                    kind_name,
                    li,
                    row
                );
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{MrcpConfig, MrcpRm};
    use desim::SimTime;
    use workload::model::homogeneous_cluster;
    use workload::{Job, JobId, Task, TaskId};

    fn job(id: u32, deadline: i64, maps: &[i64], reduces: &[i64]) -> Job {
        let mut next = id * 100;
        let mut mk = |kind, secs: i64| {
            let t = Task {
                id: TaskId(next),
                job: JobId(id),
                kind,
                exec_time: SimTime::from_secs(secs),
                req: 1,
            };
            next += 1;
            t
        };
        Job {
            id: JobId(id),
            arrival: SimTime::ZERO,
            earliest_start: SimTime::ZERO,
            deadline: SimTime::from_secs(deadline),
            map_tasks: maps.iter().map(|&s| mk(TaskKind::Map, s)).collect(),
            reduce_tasks: reduces.iter().map(|&s| mk(TaskKind::Reduce, s)).collect(),
            precedences: vec![],
        }
    }

    #[test]
    fn renders_rows_per_resource_pool() {
        let cluster = homogeneous_cluster(2, 1, 1);
        let mut rm = MrcpRm::new(MrcpConfig::default(), cluster.clone());
        let j = job(7, 100, &[10, 10], &[5]);
        let kinds: std::collections::HashMap<TaskId, TaskKind> =
            j.tasks().map(|t| (t.id, t.kind)).collect();
        rm.submit(j, SimTime::ZERO).unwrap();
        let plan = rm.reschedule(SimTime::ZERO);
        let chart = render(&cluster, &plan, &|t| kinds[&t], 40).unwrap();
        assert!(chart.contains("gantt"));
        assert!(chart.contains("map"));
        assert!(chart.contains("reduce"));
        assert!(chart.contains('7'), "job label appears: {chart}");
        // Two resources with 1 map lane each + reduce rows where used.
        assert!(chart.lines().count() >= 3, "{chart}");
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let cluster = homogeneous_cluster(1, 1, 1);
        let chart = render(&cluster, &[], &|_| TaskKind::Map, 40).unwrap();
        assert_eq!(chart, "(empty schedule)\n");
    }

    #[test]
    fn tiny_width_is_an_error_not_a_panic() {
        let cluster = homogeneous_cluster(1, 1, 1);
        let err = render(&cluster, &[], &|_| TaskKind::Map, 5).unwrap_err();
        assert_eq!(
            err,
            ManagerError::ChartTooNarrow {
                width: 5,
                min: MIN_WIDTH
            }
        );
        assert!(err.to_string().contains("width 5"));
    }

    #[test]
    fn over_capacity_schedule_is_an_error_not_a_panic() {
        use crate::manager::ScheduleEntry;
        use workload::ResourceId;
        let cluster = homogeneous_cluster(1, 1, 1);
        // Two overlapping entries on the single map slot of r0: no lane
        // assignment exists.
        let mk = |tid: u32, start: i64| ScheduleEntry {
            task: TaskId(tid),
            job: JobId(0),
            resource: ResourceId(0),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start + 10),
        };
        let entries = [mk(0, 0), mk(1, 5)];
        let err = render(&cluster, &entries, &|_| TaskKind::Map, 40).unwrap_err();
        assert_eq!(err, ManagerError::ScheduleOverCapacity(TaskId(1)));
    }
}
