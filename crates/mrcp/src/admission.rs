//! SLA-aware admission control (overload protection, DESIGN.md §5c).
//!
//! The paper evaluates MRCP-RM in a stable open system; past the
//! saturation arrival rate every scheduling round carries more work than
//! the cluster can retire and both the solve time `O` and the missed
//! deadline proportion `P` grow without bound. Admission control gates
//! work *before* it reaches the scheduler: on submit the manager runs a
//! cheap two-stage feasibility probe and returns a typed
//! [`AdmissionDecision`] instead of silently queueing a job whose SLA is
//! already unmeetable.
//!
//! The probe is
//!
//! 1. an **EDF demand bound** per slot pool ([`edf_demand_violation`]):
//!    the outstanding work of every live job with deadline `≤ d`,
//!    plus the candidate, must fit into `capacity × (d − now)` for every
//!    deadline `d`. Release times and the map→reduce barrier are ignored,
//!    which only relaxes the problem — a violated bound is a *proof* of
//!    infeasibility, never a false rejection;
//! 2. a **greedy witness schedule**: the greedy EDF warm start is run on
//!    the live model plus the candidate; the candidate's completion time
//!    in that witness is an upper bound on what the real solver will
//!    achieve, and doubles as the `earliest_feasible_deadline` quoted in
//!    renegotiations and rejections.
//!
//! What happens to an infeasible candidate is the [`AdmissionPolicy`]'s
//! choice: admit anyway (the paper's behaviour), reject, or admit with
//! the deadline renegotiated to the earliest feasible one.

use desim::SimTime;

/// How the manager treats arrivals whose SLA the probe finds unmeetable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Admit everything and skip the probe — the paper's behaviour and
    /// the default; `submit_with_admission` degenerates to `submit`.
    #[default]
    BestEffort,
    /// Reject infeasible jobs outright, quoting the earliest deadline the
    /// manager could have honoured.
    Strict,
    /// Admit infeasible jobs with the deadline renegotiated to the
    /// earliest feasible one (ARIA-style SLA renegotiation).
    Renegotiate,
}

/// Why a job was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The EDF demand bound proves no schedule meets the deadline: some
    /// deadline's cumulative work exceeds the pool capacity up to it.
    DemandExceedsCapacity,
    /// The bound passed but the greedy witness schedule completes the job
    /// after its deadline (a strong, though not airtight, infeasibility
    /// signal — CP rarely beats the witness by much under load).
    WitnessLate,
    /// The bounded pending queue is full and this job was the least
    /// valuable candidate (the farthest deadline).
    QueueFull,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::DemandExceedsCapacity => {
                write!(f, "EDF demand bound exceeds remaining capacity")
            }
            RejectReason::WitnessLate => {
                write!(f, "witness schedule completes after the deadline")
            }
            RejectReason::QueueFull => write!(f, "pending queue is full"),
        }
    }
}

/// Outcome of the admission probe for one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionDecision {
    /// The SLA looks feasible (or the policy is best-effort).
    Admit,
    /// Admitted under [`AdmissionPolicy::Renegotiate`] with a relaxed
    /// deadline; completions are judged against `new_deadline`.
    AdmitDegraded {
        /// The deadline the job asked for.
        original_deadline: SimTime,
        /// The earliest deadline the probe could promise.
        new_deadline: SimTime,
    },
    /// Refused; the manager's state is unchanged by this job.
    Reject {
        /// Why.
        reason: RejectReason,
        /// The earliest deadline that would have been admitted — the
        /// witness completion when a witness was built, else the analytic
        /// bound ([`earliest_feasible_estimate`]). `SimTime::MAX` when no
        /// capacity exists at all.
        earliest_feasible_deadline: SimTime,
    },
}

/// Admission-control configuration ([`MrcpConfig::admission`]).
///
/// [`MrcpConfig::admission`]: crate::MrcpConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionConfig {
    /// What to do with infeasible arrivals.
    pub policy: AdmissionPolicy,
    /// Backpressure: upper bound on jobs in the system (active +
    /// deferred). When an arrival would exceed it, the lowest-value jobs
    /// — unstarted, farthest deadline — are shed to make room; if the
    /// arrival itself is the least valuable it is rejected with
    /// [`RejectReason::QueueFull`]. `None` (default) disables the bound.
    pub max_pending_jobs: Option<usize>,
}

/// First deadline (ms) at which cumulative work provably exceeds pool
/// capacity, or `None` when the bound holds everywhere.
///
/// `demands` is one `(deadline_ms, work_ms)` pair per job for a single
/// slot pool with `slots` parallel slots; work counts outstanding
/// (unfinished) slot-milliseconds only. The check is the classic EDF
/// demand bound anchored at `now_ms`: for every deadline `d`,
/// `Σ {work | deadline ≤ d} ≤ slots × (d − now)`.
pub fn edf_demand_violation(now_ms: i64, slots: u32, demands: &[(i64, i64)]) -> Option<i64> {
    let mut sorted: Vec<(i64, i64)> = demands.iter().copied().filter(|&(_, w)| w > 0).collect();
    if sorted.is_empty() {
        return None;
    }
    if slots == 0 {
        return sorted.iter().map(|&(d, _)| d).min();
    }
    sorted.sort_unstable();
    let mut cum: i64 = 0;
    let mut i = 0;
    while i < sorted.len() {
        let d = sorted[i].0;
        // Fold all work sharing this deadline before testing it.
        while i < sorted.len() && sorted[i].0 == d {
            cum = cum.saturating_add(sorted[i].1);
            i += 1;
        }
        let window = (d - now_ms).max(0) as i128;
        if cum as i128 > window * slots as i128 {
            return Some(d);
        }
    }
    None
}

/// Analytic lower bound on the earliest deadline that could be admitted:
/// `now + ⌈total outstanding work / slots⌉`. Used to quote an
/// `earliest_feasible_deadline` when the demand bound already failed and
/// no witness schedule was built. `SimTime::MAX` when `slots == 0`.
pub fn earliest_feasible_estimate(now: SimTime, slots: u32, total_work: SimTime) -> SimTime {
    let ms = total_work.as_millis().max(0);
    if ms == 0 {
        return now;
    }
    if slots == 0 {
        return SimTime::MAX;
    }
    now + SimTime::from_millis((ms + slots as i64 - 1) / slots as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_for_underloaded_pool() {
        // 2 slots, two jobs of 10 s due at 20 s: 20 000 ≤ 2 × 20 000.
        assert_eq!(
            edf_demand_violation(0, 2, &[(20_000, 10_000), (20_000, 10_000)]),
            None
        );
    }

    #[test]
    fn bound_detects_overcommitted_deadline() {
        // 1 slot, 30 s of work due at 20 s.
        assert_eq!(
            edf_demand_violation(0, 1, &[(20_000, 10_000), (20_000, 20_000)]),
            Some(20_000)
        );
        // The same work spread over a 40 s horizon fits.
        assert_eq!(
            edf_demand_violation(0, 1, &[(40_000, 10_000), (40_000, 20_000)]),
            None
        );
    }

    #[test]
    fn bound_is_cumulative_across_deadlines() {
        // Each deadline fits alone; together the earlier work crowds out
        // the later deadline: at d=30 s cum work 25 s+10 s > 30 s.
        assert_eq!(
            edf_demand_violation(0, 1, &[(26_000, 25_000), (30_000, 10_000)]),
            Some(30_000)
        );
    }

    #[test]
    fn bound_is_anchored_at_now() {
        // 5 s of work due 4 s from now (t=10 s, d=14 s) on one slot.
        assert_eq!(
            edf_demand_violation(10_000, 1, &[(14_000, 5_000)]),
            Some(14_000)
        );
        assert_eq!(edf_demand_violation(8_000, 1, &[(14_000, 5_000)]), None);
    }

    #[test]
    fn zero_capacity_rejects_any_work() {
        assert_eq!(edf_demand_violation(0, 0, &[(5_000, 1)]), Some(5_000));
        assert_eq!(edf_demand_violation(0, 0, &[]), None);
    }

    #[test]
    fn zero_work_never_violates() {
        assert_eq!(edf_demand_violation(0, 1, &[(5_000, 0), (1, 0)]), None);
    }

    #[test]
    fn feasible_estimate_divides_work_over_slots() {
        let now = SimTime::from_secs(10);
        assert_eq!(
            earliest_feasible_estimate(now, 2, SimTime::from_secs(30)),
            SimTime::from_secs(25)
        );
        // Ceiling division: 1 ms of work still needs a full millisecond.
        assert_eq!(
            earliest_feasible_estimate(now, 4, SimTime::from_millis(1)),
            now + SimTime::from_millis(1)
        );
        assert_eq!(
            earliest_feasible_estimate(now, 0, SimTime::from_secs(1)),
            SimTime::MAX
        );
        // No outstanding work: any deadline from now on is feasible,
        // even with zero slots.
        assert_eq!(earliest_feasible_estimate(now, 0, SimTime::ZERO), now);
    }
}
