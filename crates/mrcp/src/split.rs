//! The §V.D performance optimization: separated scheduling and matchmaking.
//!
//! Step 1 — *scheduling*: solve the CP model against a **single combined
//! resource** holding the cluster's total map and reduce slot counts. This
//! removes the assignment dimension entirely (no `x_tr` branching, two
//! cumulative constraints instead of `2m`), which is where the paper saw
//! model generation + solve time drop from ~60 s to ~15 s.
//!
//! Step 2 — *matchmaking*: distribute the single-resource schedule over
//! unit-capacity lanes with the paper's gap heuristic (each task goes to
//! the lane that leaves "the smallest remaining gap"), then identify each
//! lane with a slot of a real resource.
//!
//! For the paper's homogeneous clusters with unit task requirements this
//! split is **lossless**: a schedule that never exceeds the total slot
//! count can always be coloured onto the individual slots (tasks are
//! processed in nondecreasing start order, so at most `total slots − 1`
//! lanes are busy whenever a task needs one). Started tasks are pinned to
//! lanes of their actual resource first; they sort before all new tasks
//! because their starts lie in the past.

use crate::modelmap::{build_combined_model, build_model, JobInput};
use cpsolve::greedy::{greedy_edf_with_hints, Hint};
use cpsolve::model::ResRef;
use cpsolve::portfolio::{solve_portfolio, PortfolioParams};
use cpsolve::search::{Outcome, SolveParams};
use cpsolve::solution::Solution;
use desim::SimTime;
use workload::{Resource, ResourceId, TaskId, TaskKind};

/// Previous-round placement suggestions, one per task in flattened
/// `JobInput` order (see [`crate::manager`]'s round cache).
pub type RoundHints = [Option<(ResourceId, SimTime)>];

/// Result of the split solve: placements in workload terms.
#[derive(Debug)]
pub struct SplitOutcome {
    /// `(task, resource, start)` for every task in the model.
    pub placements: Vec<(TaskId, ResourceId, SimTime)>,
    /// Number of late jobs in the installed schedule.
    pub objective: u32,
    /// The underlying solver outcome (status + effort stats).
    pub outcome: Outcome,
}

/// One unit-capacity lane of a real resource.
#[derive(Debug, Clone, Copy)]
struct Lane {
    resource: ResourceId,
    last_end: i64,
}

/// Solve with the combined-resource model and matchmake the result onto the
/// real cluster. Errors only on internal inconsistency (no solution within
/// budget with warm starts disabled, or a lane shortage that would indicate
/// a capacity bug).
pub fn split_solve(
    resources: &[Resource],
    jobs: &[JobInput<'_>],
    params: &SolveParams,
) -> Result<SplitOutcome, String> {
    split_solve_portfolio(resources, jobs, &PortfolioParams::single(params), None)
}

/// [`split_solve`] driven by the parallel portfolio, optionally seeded
/// with the previous round's placements. The combined model has a single
/// synthetic resource, so only the hinted start times carry over — a hint
/// whose start is stale (before this round's release) falls back to the
/// greedy heuristic inside [`greedy_edf_with_hints`].
pub fn split_solve_portfolio(
    resources: &[Resource],
    jobs: &[JobInput<'_>],
    pp: &PortfolioParams,
    hints: Option<&RoundHints>,
) -> Result<SplitOutcome, String> {
    let mm = build_combined_model(resources, jobs)?;
    let mut pp = pp.clone();
    if let Some(h) = hints {
        debug_assert_eq!(h.len(), mm.task_ids.len());
        let combined: Vec<Hint> = h
            .iter()
            .map(|o| o.map(|(_, s)| (ResRef(0), s.as_millis())))
            .collect();
        if let Ok(sol) = greedy_edf_with_hints(&mm.model, &combined) {
            // The hinted schedule replays the surviving part of the last
            // round; the portfolio improves on it from the first node.
            if pp
                .base
                .initial
                .as_ref()
                .is_none_or(|cur| sol.objective < cur.objective)
            {
                pp.base.initial = Some(sol);
            }
        }
    }
    let outcome = solve_portfolio(&mm.model, &pp);
    let best: &Solution = outcome
        .best
        .as_ref()
        .ok_or("combined-resource solve produced no schedule")?;

    // Build lanes per kind.
    let mut map_lanes: Vec<Lane> = Vec::new();
    let mut reduce_lanes: Vec<Lane> = Vec::new();
    for r in resources {
        for _ in 0..r.map_capacity {
            map_lanes.push(Lane {
                resource: r.id,
                last_end: i64::MIN,
            });
        }
        for _ in 0..r.reduce_capacity {
            reduce_lanes.push(Lane {
                resource: r.id,
                last_end: i64::MIN,
            });
        }
    }

    // Collect tasks with their solved starts; pinned first (their starts
    // precede every new start), then nondecreasing start, stable on index.
    struct Item {
        idx: usize,
        id: TaskId,
        kind: TaskKind,
        start: i64,
        dur: i64,
        pinned_res: Option<ResourceId>,
    }
    let mut items: Vec<Item> = Vec::with_capacity(mm.task_ids.len());
    {
        let mut flat = 0usize;
        for input in jobs {
            for t in &input.tasks {
                items.push(Item {
                    idx: flat,
                    id: t.id,
                    kind: t.kind,
                    start: best.starts[flat],
                    dur: t.exec_time.as_millis(),
                    pinned_res: t.pinned.map(|(r, _)| r),
                });
                flat += 1;
            }
        }
        debug_assert_eq!(flat, mm.task_ids.len());
    }
    items.sort_by_key(|it| (it.pinned_res.is_none(), it.start, it.idx));

    let mut placements: Vec<(TaskId, ResourceId, SimTime)> = Vec::with_capacity(items.len());
    for it in &items {
        let lanes = match it.kind {
            TaskKind::Map => &mut map_lanes,
            TaskKind::Reduce => &mut reduce_lanes,
        };
        // Candidate lanes: free at `start`; pinned tasks only on lanes of
        // their true resource. Pick the minimum remaining gap
        // (start − last_end), ties to the first lane.
        let mut chosen: Option<usize> = None;
        let mut best_gap = i64::MAX;
        for (li, lane) in lanes.iter().enumerate() {
            if lane.last_end > it.start {
                continue;
            }
            if let Some(pr) = it.pinned_res {
                if lane.resource != pr {
                    continue;
                }
            }
            let gap = it.start.saturating_sub(lane.last_end);
            if chosen.is_none() || gap < best_gap {
                best_gap = gap;
                chosen = Some(li);
            }
        }
        let li = chosen.ok_or_else(|| {
            format!(
                "matchmaking found no free {:?} lane for task {:?} at t={} — capacity bug",
                it.kind, it.id, it.start
            )
        })?;
        lanes[li].last_end = it.start + it.dur;
        placements.push((it.id, lanes[li].resource, SimTime::from_millis(it.start)));
    }

    // Audit: the distributed schedule must satisfy the full multi-resource
    // formulation. This is cheap relative to the solve and catches any
    // matchmaking regression immediately.
    if cfg!(debug_assertions) {
        audit(resources, jobs, &placements)?;
    }

    Ok(SplitOutcome {
        placements,
        objective: best.objective,
        outcome,
    })
}

/// Verify placements against the full multi-resource model using the
/// solver-independent checker.
pub fn audit(
    resources: &[Resource],
    jobs: &[JobInput<'_>],
    placements: &[(TaskId, ResourceId, SimTime)],
) -> Result<(), String> {
    let full = build_model(resources, jobs)?;
    let lookup: std::collections::HashMap<TaskId, (ResourceId, SimTime)> =
        placements.iter().map(|&(t, r, s)| (t, (r, s))).collect();
    let mut starts = Vec::with_capacity(full.task_ids.len());
    let mut res = Vec::with_capacity(full.task_ids.len());
    let rindex: std::collections::HashMap<ResourceId, usize> = full
        .res_ids
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, i))
        .collect();
    for id in &full.task_ids {
        let &(r, s) = lookup
            .get(id)
            .ok_or_else(|| format!("placement missing for task {id:?}"))?;
        starts.push(s.as_millis());
        res.push(cpsolve::model::ResRef(rindex[&r] as u32));
    }
    let sol = Solution::from_placements(&full.model, starts, res);
    sol.verify(&full.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelmap::TaskInput;
    use desim::SimTime;
    use workload::model::homogeneous_cluster;
    use workload::{Job, JobId, Task, TaskKind};

    fn mk_job(id: u32, s: i64, d: i64, maps: &[i64], reduces: &[i64]) -> Job {
        let mut next = id * 1000;
        let mut task = |kind, secs: i64| {
            let t = Task {
                id: TaskId(next),
                job: JobId(id),
                kind,
                exec_time: SimTime::from_secs(secs),
                req: 1,
            };
            next += 1;
            t
        };
        Job {
            id: JobId(id),
            arrival: SimTime::from_secs(s),
            earliest_start: SimTime::from_secs(s),
            deadline: SimTime::from_secs(d),
            map_tasks: maps.iter().map(|&e| task(TaskKind::Map, e)).collect(),
            reduce_tasks: reduces.iter().map(|&e| task(TaskKind::Reduce, e)).collect(),
            precedences: vec![],
        }
    }

    fn inputs(job: &Job) -> JobInput<'_> {
        JobInput {
            job,
            release: job.earliest_start,
            priority: job.deadline.as_millis(),
            tasks: job
                .tasks()
                .map(|t| TaskInput {
                    id: t.id,
                    kind: t.kind,
                    exec_time: t.exec_time,
                    req: t.req,
                    pinned: None,
                })
                .collect(),
        }
    }

    #[test]
    fn split_schedule_is_feasible_on_real_cluster() {
        let cluster = homogeneous_cluster(3, 2, 2);
        let jobs: Vec<Job> = (0..4)
            .map(|i| mk_job(i, 0, 10_000, &[10, 20, 30], &[15]))
            .collect();
        let ji: Vec<JobInput<'_>> = jobs.iter().map(inputs).collect();
        let out = split_solve(&cluster, &ji, &SolveParams::default()).unwrap();
        audit(&cluster, &ji, &out.placements).unwrap();
        assert_eq!(out.placements.len(), 16);
        assert_eq!(out.objective, 0, "deadlines are loose");
    }

    #[test]
    fn split_honours_pins_on_their_resource() {
        let cluster = homogeneous_cluster(2, 1, 1);
        let job = mk_job(0, 0, 10_000, &[10, 10], &[]);
        let mut ji = inputs(&job);
        ji.tasks[0].pinned = Some((ResourceId(1), SimTime::from_secs(2)));
        let jis = vec![ji];
        let out = split_solve(&cluster, &jis, &SolveParams::default()).unwrap();
        let pinned = out
            .placements
            .iter()
            .find(|(t, _, _)| *t == TaskId(0))
            .unwrap();
        assert_eq!(pinned.1, ResourceId(1));
        assert_eq!(pinned.2, SimTime::from_secs(2));
        audit(&cluster, &jis, &out.placements).unwrap();
    }

    #[test]
    fn contention_is_resolved_without_overlap() {
        // 1 resource, 1 map slot, 3 tasks → must serialize even though the
        // combined model equals the real one here.
        let cluster = homogeneous_cluster(1, 1, 1);
        let job = mk_job(0, 0, 10_000, &[10, 10, 10], &[]);
        let jis = [inputs(&job)];
        let out = split_solve(&cluster, &jis, &SolveParams::default()).unwrap();
        audit(&cluster, &jis, &out.placements).unwrap();
        let mut starts: Vec<i64> = out.placements.iter().map(|p| p.2.as_millis()).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 10_000, 20_000]);
    }

    #[test]
    fn gap_heuristic_prefers_tight_fit() {
        // Two map lanes with different availability; heuristic picks the
        // lane leaving the smaller gap (the paper's r1-vs-r2 example).
        let mut lanes = [
            Lane {
                resource: ResourceId(0),
                last_end: 10_000, // gap 1s for a start at 11s
            },
            Lane {
                resource: ResourceId(1),
                last_end: 8_000, // gap 3s
            },
        ];
        // Reproduce the selection logic inline.
        let start = 11_000i64;
        let mut chosen = None;
        let mut best_gap = i64::MAX;
        for (li, lane) in lanes.iter().enumerate() {
            if lane.last_end > start {
                continue;
            }
            let gap = start - lane.last_end;
            if gap < best_gap {
                best_gap = gap;
                chosen = Some(li);
            }
        }
        assert_eq!(chosen, Some(0), "paper's example: gap 1 beats gap 3");
        lanes[chosen.unwrap()].last_end = start + 4_000;
        assert_eq!(lanes[0].last_end, 15_000);
    }
}
