//! The MRCP-RM resource manager (paper Fig. 1 and the Table 2 algorithm).
//!
//! Users submit MapReduce jobs; the manager maps and schedules all
//! outstanding work by building and solving a CP model on every
//! (re)scheduling round:
//!
//! * jobs whose earliest start time has passed get `release = now`
//!   (Table 2 lines 1–4),
//! * tasks that have started but not completed are **pinned** to their
//!   resource and start time (lines 5–12) — the solver may not move them,
//! * completed tasks leave the model, finished jobs leave the system
//!   (lines 13–16),
//! * everything else — including previously scheduled but unstarted
//!   tasks — is remapped and rescheduled from scratch, "to provide the
//!   most flexibility … for example, a new job with an earlier deadline
//!   may need to be mapped and scheduled in the place of a previously
//!   scheduled job" (lines 19–24).
//!
//! Instead of scanning per-resource task lists as the paper's Java
//! implementation does, the manager receives explicit `task_started` /
//! `task_completed` notifications from its host (the simulator or a real
//! execution layer) — equivalent bookkeeping with the same outcome.
//!
//! The §V.D split optimization and §V.E deferral are both on by default,
//! as in the paper's evaluated configuration, and can be disabled for
//! ablations.

use crate::admission::{
    earliest_feasible_estimate, edf_demand_violation, AdmissionConfig, AdmissionDecision,
    AdmissionPolicy, RejectReason,
};
use crate::defer::DeferPolicy;
use crate::modelmap::{build_model, JobInput, MappedModel, TaskInput};
use crate::ordering::JobOrdering;
use crate::split::{split_solve_portfolio, RoundHints};
use cpsolve::greedy::{greedy_edf, greedy_edf_with_hints, Hint};
use cpsolve::model::ResRef;
use cpsolve::portfolio::{solve_portfolio, PortfolioParams};
use cpsolve::search::{Outcome, SolveParams, SolveStats, Status};
use desim::SimTime;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};
use workload::{Job, JobId, Resource, ResourceId, TaskId, TaskKind};

/// Rejected calls into the manager's public API. The manager's state is
/// unchanged when any of these is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManagerError {
    /// The job id is already in the system.
    DuplicateJob(JobId),
    /// A task id of the submitted job collides with a task already known.
    DuplicateTask(TaskId),
    /// The task id is not in the system.
    UnknownTask(TaskId),
    /// The job id is not in the system.
    UnknownJob(JobId),
    /// `take_unstarted_job` for a job with started or completed tasks —
    /// partially-executed jobs cannot migrate between managers.
    JobNotMigratable(JobId),
    /// `task_started` for a task with no current schedule entry.
    TaskNotScheduled(TaskId),
    /// A lifecycle notification that does not match the task's state
    /// (e.g. completion of a task that never started).
    TaskNotRunning(TaskId),
    /// The resource id does not belong to this cluster.
    UnknownResource(ResourceId),
    /// `resource_down` for a resource already marked down.
    ResourceAlreadyDown(ResourceId),
    /// `resource_up` for a resource that is not down.
    ResourceNotDown(ResourceId),
    /// Gantt rendering: the requested chart width is below the minimum.
    ChartTooNarrow {
        /// The width asked for.
        width: usize,
        /// The smallest width the renderer can lay out.
        min: usize,
    },
    /// Gantt rendering: concurrent schedule entries exceed a resource's
    /// slot capacity, so the task cannot be placed in any lane.
    ScheduleOverCapacity(TaskId),
    /// An internal invariant was violated (e.g. a shedding victim vanished
    /// between selection and eviction, or a restored snapshot references
    /// ids twice). Surfaced as a typed error instead of a panic so a
    /// corrupted manager degrades a call, not the whole process.
    Inconsistent(&'static str),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::DuplicateJob(j) => write!(f, "job {j} submitted twice"),
            ManagerError::DuplicateTask(t) => write!(f, "task {t} already known"),
            ManagerError::UnknownTask(t) => write!(f, "unknown task {t}"),
            ManagerError::UnknownJob(j) => write!(f, "unknown job {j}"),
            ManagerError::JobNotMigratable(j) => {
                write!(f, "job {j} has started tasks and cannot migrate")
            }
            ManagerError::TaskNotScheduled(t) => {
                write!(f, "task {t} has no schedule entry")
            }
            ManagerError::TaskNotRunning(t) => write!(f, "task {t} is not running"),
            ManagerError::UnknownResource(r) => write!(f, "unknown resource {r:?}"),
            ManagerError::ResourceAlreadyDown(r) => {
                write!(f, "resource {r:?} is already down")
            }
            ManagerError::ResourceNotDown(r) => write!(f, "resource {r:?} is not down"),
            ManagerError::ChartTooNarrow { width, min } => {
                write!(f, "chart width {width} below minimum {min}")
            }
            ManagerError::ScheduleOverCapacity(t) => {
                write!(f, "task {t} does not fit any capacity lane")
            }
            ManagerError::Inconsistent(what) => {
                write!(f, "internal inconsistency: {what}")
            }
        }
    }
}

impl std::error::Error for ManagerError {}

/// A scheduling round that could not produce any schedule, after every
/// rung of the degradation ladder (split CP → full CP → greedy EDF).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedulingError {
    /// The live state could not be translated into a CP model.
    ModelBuild(String),
    /// No rung produced a solution (contradictory pins are the only
    /// plausible cause — greedy always succeeds on consistent state).
    NoSolution(String),
    /// The last-resort schedule failed the independent audit.
    AuditFailed(String),
    /// A solved round's placements referenced tasks or jobs the manager
    /// does not hold — an internal inconsistency surfaced as a failed
    /// round instead of a panic (PR-2 no-panic convention).
    Inconsistent(String),
}

impl fmt::Display for SchedulingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingError::ModelBuild(e) => write!(f, "model build failed: {e}"),
            SchedulingError::NoSolution(e) => write!(f, "no schedule found: {e}"),
            SchedulingError::AuditFailed(e) => write!(f, "schedule audit failed: {e}"),
            SchedulingError::Inconsistent(e) => write!(f, "inconsistent round: {e}"),
        }
    }
}

impl std::error::Error for SchedulingError {}

/// The rung of the degradation ladder that served a round's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundRung {
    /// The §V.D split model (schedule-then-matchmake).
    SplitCp,
    /// The monolithic multi-resource CP model.
    FullCp,
    /// Pure-LNS repair of the greedy incumbent (strong filtering inside
    /// small frozen windows at a fraction of full-CP cost).
    Lns,
    /// Greedy EDF, the unconditional fallback.
    Greedy,
}

impl RoundRung {
    /// Stable identifier used as the `rung` telemetry label.
    fn name(self) -> &'static str {
        match self {
            RoundRung::SplitCp => "split_cp",
            RoundRung::FullCp => "full_cp",
            RoundRung::Lns => "lns",
            RoundRung::Greedy => "greedy",
        }
    }
}

/// What a scheduling round yields: the placements (task, resource, start),
/// the solver outcome they came from, whether the primary rung of the
/// degradation ladder was abandoned along the way, and which rung finally
/// served the schedule.
type RoundResult = (Vec<(TaskId, ResourceId, SimTime)>, Outcome, bool, RoundRung);

/// Adaptive effort scaling — the paper's §VII future-work item
/// "mechanisms that can reduce matchmaking and scheduling times when λ is
/// high". When the model grows beyond `reference_tasks`, the per-round
/// node/fail limits shrink proportionally (never below `floor_nodes`), so
/// the *total* scheduling effort per unit time stays roughly constant as
/// load rises instead of multiplying with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBudget {
    /// Model size (task count) at which the base budget applies unscaled.
    pub reference_tasks: usize,
    /// Lower bound on the scaled node/fail limits.
    pub floor_nodes: u64,
}

/// Per-invocation solver effort limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveBudget {
    /// Maximum branching decisions per invocation.
    pub node_limit: u64,
    /// Maximum conflicts per invocation.
    pub fail_limit: u64,
    /// Wall-clock ceiling per invocation, milliseconds (None = unlimited).
    pub time_limit_ms: Option<u64>,
    /// Optional adaptive scaling with model size.
    pub adaptive: Option<AdaptiveBudget>,
    /// Seed each solve with the greedy EDF incumbent (on in the paper's
    /// configuration; turning it off exposes the `Unknown` degradation
    /// path for testing).
    pub warm_start: bool,
    /// Parallel portfolio workers per solve (1 = the single-threaded
    /// search; >1 spawns diversified workers sharing the incumbent bound,
    /// see [`cpsolve::portfolio`]).
    pub workers: usize,
    /// Cost-aware propagator scheduling: demote strong-but-redundant
    /// propagators that stop earning their keep on the instance (see
    /// [`cpsolve::SchedulingOptions`]; never changes verdicts).
    pub prop_scheduling: bool,
    /// Large-neighborhood search: enables both the LNS phase inside each
    /// CP solve and the LNS rung of the degradation ladder (see
    /// [`cpsolve::lns`]).
    pub lns: bool,
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget {
            node_limit: 20_000,
            fail_limit: 20_000,
            time_limit_ms: Some(200),
            adaptive: None,
            warm_start: true,
            workers: 1,
            prop_scheduling: true,
            lns: true,
        }
    }
}

impl SolveBudget {
    /// Effective solver parameters for a model with `n_tasks` tasks.
    pub fn params_for(&self, n_tasks: usize) -> SolveParams {
        let (nodes, fails) = match self.adaptive {
            Some(a) if n_tasks > a.reference_tasks => {
                let scale = a.reference_tasks as f64 / n_tasks as f64;
                let nodes = ((self.node_limit as f64 * scale) as u64).max(a.floor_nodes);
                let fails = ((self.fail_limit as f64 * scale) as u64).max(a.floor_nodes);
                (nodes, fails)
            }
            _ => (self.node_limit, self.fail_limit),
        };
        SolveParams {
            node_limit: nodes,
            fail_limit: fails,
            time_limit: self.time_limit_ms.map(Duration::from_millis),
            warm_start: self.warm_start,
            prop_scheduling: self.prop_scheduling,
            lns: cpsolve::LnsParams {
                enabled: self.lns,
                ..cpsolve::LnsParams::default()
            },
            ..Default::default()
        }
    }
}

/// Feedback controller keeping per-round scheduling latency under a
/// ceiling (DESIGN.md §5c). After every round the observed wall-clock
/// latency updates an EWMA; when the EWMA crosses three quarters of the
/// ceiling the per-round solver budget is halved (down to `min_scale`),
/// and when it falls below a quarter the budget doubles back toward
/// full. Shrunken budgets also escalate the degradation ladder early:
/// below half scale the full-CP second chance is skipped, and at
/// `min_scale` rounds go straight to greedy EDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetController {
    /// Target ceiling for per-round scheduling latency.
    pub latency_ceiling: Duration,
    /// EWMA smoothing factor in `(0, 1]`; higher reacts faster.
    pub alpha: f64,
    /// Lower bound on the budget scale factor.
    pub min_scale: f64,
}

impl Default for BudgetController {
    fn default() -> Self {
        BudgetController {
            latency_ceiling: Duration::from_millis(250),
            alpha: 0.3,
            min_scale: 1.0 / 64.0,
        }
    }
}

impl BudgetController {
    /// A controller with the given latency ceiling and default dynamics.
    pub fn with_ceiling(latency_ceiling: Duration) -> Self {
        BudgetController {
            latency_ceiling,
            ..Default::default()
        }
    }
}

/// MRCP-RM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcpConfig {
    /// Job ordering strategy (paper §VI.B; EDF is the reported default).
    pub ordering: JobOrdering,
    /// Per-invocation solver budget.
    pub budget: SolveBudget,
    /// §V.D: schedule on one combined resource, then matchmake (default on).
    pub use_split: bool,
    /// §V.E: defer jobs whose `s_j` lies in the future (default on).
    pub defer: DeferPolicy,
    /// Audit every installed schedule with the independent verifier
    /// (always on in debug builds).
    pub verify_schedules: bool,
    /// Failed attempts a task may accumulate before
    /// [`task_failed`](MrcpRm::task_failed) abandons its job.
    pub retry_budget: u32,
    /// Overload protection: admission policy and pending-queue bound
    /// (default: admit everything, unbounded — the paper's behaviour).
    pub admission: AdmissionConfig,
    /// Overload protection: adaptive per-round budget controller
    /// (default: off — budgets stay at their configured values).
    pub controller: Option<BudgetController>,
    /// Cross-round incremental reuse: cache the previous round's
    /// placements and feed the surviving portion (unchanged jobs on an
    /// unchanged resource pool) back as the next solve's warm start
    /// (default on; off reproduces the paper's from-scratch rounds).
    pub reuse_rounds: bool,
}

impl Default for MrcpConfig {
    fn default() -> Self {
        MrcpConfig {
            ordering: JobOrdering::Edf,
            budget: SolveBudget::default(),
            use_split: true,
            defer: DeferPolicy::default(),
            verify_schedules: cfg!(debug_assertions),
            retry_budget: 3,
            admission: AdmissionConfig::default(),
            controller: None,
            reuse_rounds: true,
        }
    }
}

/// One planned (not yet started) task execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// The task.
    pub task: TaskId,
    /// Its job.
    pub job: JobId,
    /// Assigned resource.
    pub resource: ResourceId,
    /// Assigned start time.
    pub start: SimTime,
    /// Completion time (`start + e_t`).
    pub end: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskStatus {
    Waiting,
    Started {
        resource: ResourceId,
        start: SimTime,
    },
    Completed,
}

#[derive(Debug, Clone)]
struct TaskState {
    id: TaskId,
    kind: TaskKind,
    /// Current execution-time estimate (revised upward for stragglers).
    exec_time: SimTime,
    /// The job's declared `e_t`, restored when a failed attempt requeues.
    nominal_exec: SimTime,
    req: u32,
    status: TaskStatus,
    /// Attempts of this task that have failed so far.
    failed_attempts: u32,
}

#[derive(Debug)]
struct JobState {
    job: Job,
    tasks: Vec<TaskState>,
    remaining: usize,
}

/// Cross-round reuse state: the previous round's placements keyed by
/// fingerprints of what produced them. A job whose fingerprint is
/// unchanged under an unchanged resource pool gets its old placements
/// replayed as warm-start hints; anything else re-solves from scratch.
///
/// Job releases are deliberately **excluded** from the fingerprint — they
/// advance with `now` every round, so including them would invalidate the
/// cache permanently. Staleness from advancing time is handled at replay:
/// a hint whose start lies before this round's release is dropped by the
/// hinted greedy, and the solver independently verifies the warm-start
/// incumbent before using it.
#[derive(Debug)]
struct RoundCache {
    /// Fingerprint of the up-resource pool the placements assume.
    pool_fp: u64,
    /// Per-job fingerprint (tasks, deadline, priority, pins) at solve time.
    jobs: HashMap<JobId, u64>,
    /// The installed placements of the previous round.
    placements: HashMap<TaskId, (ResourceId, SimTime)>,
}

/// Fingerprint of the schedulable resource pool (ids + capacities).
fn pool_fingerprint(up: &[Resource]) -> u64 {
    let mut h = DefaultHasher::new();
    for r in up {
        r.id.hash(&mut h);
        r.map_capacity.hash(&mut h);
        r.reduce_capacity.hash(&mut h);
    }
    h.finish()
}

/// Fingerprint of one job's model-relevant state (everything that shapes
/// its part of the CP model except the release — see [`RoundCache`]).
fn job_fingerprint(input: &JobInput<'_>) -> u64 {
    let mut h = DefaultHasher::new();
    input.job.id.hash(&mut h);
    input.job.deadline.as_millis().hash(&mut h);
    input.priority.hash(&mut h);
    for t in &input.tasks {
        t.id.hash(&mut h);
        t.kind.hash(&mut h);
        t.exec_time.as_millis().hash(&mut h);
        t.req.hash(&mut h);
        t.pinned.map(|(r, s)| (r, s.as_millis())).hash(&mut h);
    }
    h.finish()
}

/// Aggregate manager statistics (drives the paper's `O` metric).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Scheduling rounds executed.
    pub invocations: u64,
    /// Total wall-clock time spent building + solving models.
    pub total_solve: Duration,
    /// Total solver branching decisions.
    pub total_nodes: u64,
    /// Rounds in which the solver proved optimality.
    pub optimal_rounds: u64,
    /// Rounds stopped by budget with an incumbent.
    pub feasible_rounds: u64,
    /// Rounds where every CP rung came back empty and the greedy EDF
    /// fallback supplied the schedule.
    pub degraded_rounds: u64,
    /// Rounds where even the fallback produced nothing (the plan is left
    /// empty; tasks wait for the next round).
    pub failed_rounds: u64,
    /// Task attempts reported failed via [`MrcpRm::task_failed`].
    pub tasks_failed: u64,
    /// Failed or interrupted tasks returned to the waiting queue.
    pub tasks_requeued: u64,
    /// Jobs abandoned because a task exhausted its retry budget.
    pub jobs_abandoned: u64,
    /// Largest single-round task count.
    pub max_tasks_in_model: usize,
    /// Jobs refused by the admission probe or the queue bound.
    pub jobs_rejected: u64,
    /// Jobs admitted with a renegotiated (relaxed) deadline.
    pub jobs_renegotiated: u64,
    /// Jobs shed from the pending queue to admit more urgent arrivals.
    pub jobs_shed: u64,
    /// High-water mark of jobs in the system (active + deferred).
    pub max_queue_depth: usize,
    /// Budget-controller scale changes (shrinks + grows).
    pub budget_adaptations: u64,
    /// Longest single scheduling round observed.
    pub max_round_solve: Duration,
    /// Rounds that reused at least one cached placement from the previous
    /// round as warm start (cross-round incremental reuse).
    pub warm_rounds: u64,
    /// Round-cache invalidations from resource availability changes.
    pub cache_invalidations: u64,
    /// Rounds served by the pure-LNS rung of the degradation ladder.
    pub lns_rounds: u64,
}

impl ManagerStats {
    /// Fold another manager's statistics into this one (the federation
    /// layer aggregates per-cell stats into fleet totals): counters and
    /// durations add, high-water marks take the max.
    pub fn absorb(&mut self, other: &ManagerStats) {
        self.invocations += other.invocations;
        self.total_solve += other.total_solve;
        self.total_nodes += other.total_nodes;
        self.optimal_rounds += other.optimal_rounds;
        self.feasible_rounds += other.feasible_rounds;
        self.degraded_rounds += other.degraded_rounds;
        self.failed_rounds += other.failed_rounds;
        self.tasks_failed += other.tasks_failed;
        self.tasks_requeued += other.tasks_requeued;
        self.jobs_abandoned += other.jobs_abandoned;
        self.max_tasks_in_model = self.max_tasks_in_model.max(other.max_tasks_in_model);
        self.jobs_rejected += other.jobs_rejected;
        self.jobs_renegotiated += other.jobs_renegotiated;
        self.jobs_shed += other.jobs_shed;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.budget_adaptations += other.budget_adaptations;
        self.max_round_solve = self.max_round_solve.max(other.max_round_solve);
        self.warm_rounds += other.warm_rounds;
        self.cache_invalidations += other.cache_invalidations;
        self.lns_rounds += other.lns_rounds;
    }
}

/// A task's lifecycle state inside a [`ManagerImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatusImage {
    /// Queued (or requeued after a failure), awaiting a plan slot.
    Waiting,
    /// Running on `resource` since `start`.
    Started {
        /// The resource executing the attempt.
        resource: ResourceId,
        /// When the attempt began.
        start: SimTime,
    },
    /// Finished.
    Completed,
}

/// One task's durable state inside a [`ManagerImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskImage {
    /// The task.
    pub id: TaskId,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Current execution-time estimate (revised for stragglers).
    pub exec_time: SimTime,
    /// The declared `e_t`, restored when a failed attempt requeues.
    pub nominal_exec: SimTime,
    /// Slots required.
    pub req: u32,
    /// Lifecycle state.
    pub status: TaskStatusImage,
    /// Failed attempts accumulated so far.
    pub failed_attempts: u32,
}

/// One live job and its task states inside a [`ManagerImage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobImage {
    /// The job as submitted (deadline may have been renegotiated).
    pub job: Job,
    /// Its tasks, in submission order.
    pub tasks: Vec<TaskImage>,
}

/// The cross-round reuse cache inside a [`ManagerImage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundCacheImage {
    /// Fingerprint of the up-resource pool the placements assume.
    pub pool_fp: u64,
    /// Per-job fingerprints at solve time, sorted by job.
    pub jobs: Vec<(JobId, u64)>,
    /// The previous round's installed placements, sorted by task.
    pub placements: Vec<(TaskId, ResourceId, SimTime)>,
}

/// A complete, plain-data snapshot of an [`MrcpRm`]'s mutable state, as
/// produced by [`MrcpRm::image`] and consumed by [`MrcpRm::restore`].
///
/// Everything a recovered manager needs to continue bit-exactly is here:
/// live jobs with task lifecycle states, the deferral queue, the current
/// plan, downed resources, the budget-controller state, the round cache,
/// and the accumulated statistics. Collections are sorted so two managers
/// in the same logical state produce identical images (`HashMap` iteration
/// order never leaks). The configuration and the resource pool are *not*
/// part of the image — they are construction inputs the durability layer
/// persists separately (they never change mid-run, except the portfolio
/// worker override, which the federation re-asserts every round).
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerImage {
    /// Live jobs (active + deferred), sorted by job id.
    pub jobs: Vec<JobImage>,
    /// Deferred activations `(activation, job)`, sorted.
    pub deferred: Vec<(SimTime, JobId)>,
    /// Planned entries for unstarted tasks, sorted by task.
    pub schedule: Vec<ScheduleEntry>,
    /// Resources currently down, sorted.
    pub down: Vec<ResourceId>,
    /// Budget-controller scale, `(min_scale, 1]`.
    pub budget_scale: f64,
    /// Round-latency EWMA, `None` before the first round.
    pub latency_ewma_s: Option<f64>,
    /// Cross-round reuse cache, `None` when cold.
    pub cache: Option<RoundCacheImage>,
    /// Accumulated statistics.
    pub stats: ManagerStats,
}

/// A fully-unstarted job's standing in the current plan, as reported by
/// [`MrcpRm::planned_unstarted_jobs`] for the federation rebalancer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedJob {
    /// The job.
    pub job: JobId,
    /// Its earliest start `s_j` (migration is only safe once this has
    /// passed — a migrated submit must come back `Active`, not deferred).
    pub earliest_start: SimTime,
    /// Its SLA deadline.
    pub deadline: SimTime,
    /// Planned completion per the current schedule; [`SimTime::MAX`] when
    /// at least one task has no schedule entry (unplanned work).
    pub planned_completion: SimTime,
}

/// Completion record returned when a job's last task finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCompletion {
    /// The job.
    pub job: JobId,
    /// When its last task finished.
    pub completion: SimTime,
    /// Its SLA deadline.
    pub deadline: SimTime,
    /// Its earliest start time `s_j` (the paper measures turnaround from
    /// here).
    pub earliest_start: SimTime,
    /// Whether the deadline was missed.
    pub late: bool,
}

/// Outcome of [`MrcpRm::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// The job entered the scheduling set; call
    /// [`reschedule`](MrcpRm::reschedule).
    Active,
    /// §V.E deferral: the job is parked until the given activation time.
    Deferred(SimTime),
}

/// The manager's live-telemetry instrument set (DESIGN.md §5k): every
/// counter here is recorded at the *same code point* that mutates the
/// corresponding [`ManagerStats`] field, so a mid-run scrape always
/// reconciles with the end-of-run struct. Handles are registered once
/// (at [`MrcpRm::set_telemetry`]); recording is atomic adds only, so a
/// scheduling round never blocks on observability. Defaults to the
/// disabled no-op set.
#[derive(Debug, Clone)]
pub(crate) struct ManagerTel {
    bus: telemetry::EventBus,
    /// Rounds served, labeled by degradation-ladder rung.
    rounds_split: telemetry::Counter,
    rounds_full: telemetry::Counter,
    rounds_lns: telemetry::Counter,
    rounds_greedy: telemetry::Counter,
    rounds_failed: telemetry::Counter,
    round_solve_us: telemetry::Histogram,
    admitted: telemetry::Counter,
    renegotiated: telemetry::Counter,
    rejected: telemetry::Counter,
    shed: telemetry::Counter,
    warm_rounds: telemetry::Counter,
    cache_invalidations: telemetry::Counter,
    tasks_failed: telemetry::Counter,
    tasks_requeued: telemetry::Counter,
    jobs_abandoned: telemetry::Counter,
    jobs_in_system: telemetry::Gauge,
    resources_down: telemetry::Gauge,
    budget_scale_milli: telemetry::Gauge,
    budget_adaptations: telemetry::Counter,
    solve: cpsolve::SolveTel,
}

impl ManagerTel {
    fn new(tel: &telemetry::Telemetry) -> ManagerTel {
        let reg = &tel.registry;
        ManagerTel {
            bus: tel.bus.clone(),
            rounds_split: reg.counter("mrcp_rounds_total", &[("rung", "split_cp")]),
            rounds_full: reg.counter("mrcp_rounds_total", &[("rung", "full_cp")]),
            rounds_lns: reg.counter("mrcp_rounds_total", &[("rung", "lns")]),
            rounds_greedy: reg.counter("mrcp_rounds_total", &[("rung", "greedy")]),
            rounds_failed: reg.counter("mrcp_rounds_total", &[("rung", "failed")]),
            round_solve_us: reg.histogram("mrcp_round_solve_us", &[], telemetry::LATENCY_US_BOUNDS),
            admitted: reg.counter("mrcp_admission_total", &[("verdict", "admitted")]),
            renegotiated: reg.counter("mrcp_admission_total", &[("verdict", "renegotiated")]),
            rejected: reg.counter("mrcp_admission_total", &[("verdict", "rejected")]),
            shed: reg.counter("mrcp_jobs_shed_total", &[]),
            warm_rounds: reg.counter("mrcp_warm_rounds_total", &[]),
            cache_invalidations: reg.counter("mrcp_cache_invalidations_total", &[]),
            tasks_failed: reg.counter("mrcp_tasks_failed_total", &[]),
            tasks_requeued: reg.counter("mrcp_tasks_requeued_total", &[]),
            jobs_abandoned: reg.counter("mrcp_jobs_abandoned_total", &[]),
            jobs_in_system: reg.gauge("mrcp_jobs_in_system", &[]),
            resources_down: reg.gauge("mrcp_resources_down", &[]),
            budget_scale_milli: reg.gauge("mrcp_budget_scale_milli", &[]),
            budget_adaptations: reg.counter("mrcp_budget_adaptations_total", &[]),
            solve: cpsolve::SolveTel::new(reg),
        }
    }

    fn rung_counter(&self, rung: RoundRung) -> &telemetry::Counter {
        match rung {
            RoundRung::SplitCp => &self.rounds_split,
            RoundRung::FullCp => &self.rounds_full,
            RoundRung::Lns => &self.rounds_lns,
            RoundRung::Greedy => &self.rounds_greedy,
        }
    }

    fn event(&self, now: SimTime, kind: telemetry::EventKind, job: Option<u64>, detail: &str) {
        self.bus.publish(telemetry::Event {
            at_ms: now.as_millis(),
            kind,
            cell: None,
            job,
            detail: detail.to_string(),
        });
    }
}

impl Default for ManagerTel {
    fn default() -> ManagerTel {
        ManagerTel::new(&telemetry::Telemetry::disabled())
    }
}

/// Outcome of [`MrcpRm::submit_with_admission`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionOutcome {
    /// What the admission probe decided.
    pub decision: AdmissionDecision,
    /// How the job entered the system — `None` when it was rejected.
    pub submitted: Option<Submitted>,
    /// Jobs shed from the pending queue to make room; the host should
    /// cancel any events it still holds for their tasks.
    pub shed: Vec<AbandonedJob>,
}

/// A job forced out of the system because one of its tasks exhausted the
/// retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbandonedJob {
    /// The job.
    pub job: JobId,
    /// Every task of the job (completed or not) — the host should cancel
    /// any events it still holds for them.
    pub tasks: Vec<TaskId>,
    /// Its SLA deadline.
    pub deadline: SimTime,
    /// Its earliest start `s_j`.
    pub earliest_start: SimTime,
}

/// Outcome of [`MrcpRm::task_failed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureAction {
    /// The attempt was charged and the task requeued; the caller should
    /// reschedule.
    Requeued {
        /// Failed attempts accumulated by this task so far.
        failed_attempts: u32,
    },
    /// The retry budget is exhausted: the job left the system.
    JobAbandoned(AbandonedJob),
}

/// The MRCP-RM resource manager.
///
/// ```
/// use desim::SimTime;
/// use mrcp::{MrcpConfig, MrcpRm};
/// use workload::model::homogeneous_cluster;
/// use workload::{Job, JobId, Task, TaskId, TaskKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let job = Job {
///     id: JobId(0),
///     arrival: SimTime::ZERO,
///     earliest_start: SimTime::ZERO,
///     deadline: SimTime::from_secs(60),
///     map_tasks: vec![Task {
///         id: TaskId(0), job: JobId(0), kind: TaskKind::Map,
///         exec_time: SimTime::from_secs(10), req: 1,
///     }],
///     reduce_tasks: vec![],
///     precedences: vec![],
/// };
///
/// let mut rm = MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(2, 1, 1));
/// rm.submit(job, SimTime::ZERO)?;
/// let plan = rm.reschedule(SimTime::ZERO);   // Table 2 algorithm
/// let first = *plan.first().ok_or("round produced no plan")?;
/// assert_eq!(plan.len(), 1);
/// assert_eq!(first.start, SimTime::ZERO);
///
/// // Drive execution like the simulator would:
/// rm.task_started(first.task, first.start)?;
/// let done = rm
///     .task_completed(first.task, first.end)?
///     .ok_or("job still has tasks outstanding")?;
/// assert!(!done.late);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MrcpRm {
    cfg: MrcpConfig,
    resources: Vec<Resource>,
    jobs: HashMap<JobId, JobState>,
    /// Jobs parked by the deferral policy: `(activation, job)`.
    deferred: Vec<(SimTime, JobId)>,
    /// Task → owning job, for event routing.
    task_owner: HashMap<TaskId, JobId>,
    /// Current plan for unstarted tasks.
    schedule: HashMap<TaskId, ScheduleEntry>,
    /// Resources currently down — excluded from every scheduling round.
    down: HashSet<ResourceId>,
    /// The most recent round's failure, if it produced no schedule.
    last_error: Option<SchedulingError>,
    /// Budget-controller state: current scale on the per-round solver
    /// budget, `(min_scale, 1]`; 1.0 when no controller is configured.
    budget_scale: f64,
    /// EWMA of recent round latencies (seconds), `None` before the first
    /// round.
    latency_ewma_s: Option<f64>,
    /// Previous round's placements for cross-round reuse; `None` when
    /// cold (first round, failed round, or invalidated).
    cache: Option<RoundCache>,
    stats: ManagerStats,
    /// Live instruments mirroring `stats` (disabled by default; see
    /// [`MrcpRm::set_telemetry`]). Strictly observational: never read
    /// back by any scheduling decision.
    tel: ManagerTel,
}

impl MrcpRm {
    /// A manager over `resources`.
    pub fn new(cfg: MrcpConfig, resources: Vec<Resource>) -> Self {
        assert!(!resources.is_empty(), "manager needs at least one resource");
        MrcpRm {
            cfg,
            resources,
            jobs: HashMap::new(),
            deferred: Vec::new(),
            task_owner: HashMap::new(),
            schedule: HashMap::new(),
            down: HashSet::new(),
            last_error: None,
            budget_scale: 1.0,
            latency_ewma_s: None,
            cache: None,
            stats: ManagerStats::default(),
            tel: ManagerTel::default(),
        }
    }

    /// Attach live telemetry: registers this manager's instruments in
    /// `tel.registry` and publishes events on `tel.bus`. Recording is
    /// atomic adds at the same sites that mutate [`ManagerStats`], so a
    /// mid-run scrape reconciles with [`MrcpRm::stats`]. Pass
    /// [`telemetry::Telemetry::disabled`] (the default) for bit-exact
    /// no-op behaviour.
    pub fn set_telemetry(&mut self, tel: &telemetry::Telemetry) {
        self.tel = ManagerTel::new(tel);
        self.tel.jobs_in_system.set(self.jobs.len() as i64);
        self.tel.resources_down.set(self.down.len() as i64);
        self.tel
            .budget_scale_milli
            .set((self.budget_scale * 1000.0).round() as i64);
    }

    /// The configuration in use.
    pub fn config(&self) -> &MrcpConfig {
        &self.cfg
    }

    /// The cluster.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Number of jobs currently in the system (active + deferred).
    pub fn jobs_in_system(&self) -> usize {
        self.jobs.len()
    }

    /// Current budget-controller scale on the per-round solver budget
    /// (1.0 = full budget; only moves when a controller is configured).
    pub fn budget_scale(&self) -> f64 {
        self.budget_scale
    }

    /// EWMA of recent round latencies, `None` before the first round.
    pub fn latency_ewma(&self) -> Option<Duration> {
        self.latency_ewma_s.map(Duration::from_secs_f64)
    }

    /// The error from the most recent scheduling round, when that round
    /// produced no schedule at all (see [`ManagerStats::failed_rounds`]).
    pub fn last_scheduling_error(&self) -> Option<&SchedulingError> {
        self.last_error.as_ref()
    }

    /// Resources currently marked down.
    pub fn down_resources(&self) -> Vec<ResourceId> {
        let mut ids: Vec<ResourceId> = self.down.iter().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Total remaining execution time across live jobs' non-completed
    /// tasks — the load estimate the federation router compares cells by.
    pub fn outstanding_work(&self) -> SimTime {
        let mut total = SimTime::ZERO;
        for state in self.jobs.values() {
            for t in &state.tasks {
                if t.status != TaskStatus::Completed {
                    total += t.exec_time;
                }
            }
        }
        total
    }

    /// The stored job, if it is in the system (active or deferred).
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id).map(|s| &s.job)
    }

    /// Override the per-round portfolio worker count. The federation layer
    /// splits one [`SolveBudget::workers`] budget across the cells solving
    /// concurrently in a round; clamped to at least one worker.
    pub fn set_portfolio_workers(&mut self, workers: usize) {
        self.cfg.budget.workers = workers.max(1);
    }

    /// Run the two-stage admission probe (DESIGN.md §5c) against this
    /// manager's live state without submitting anything. The federation
    /// router and rebalancer use this as the per-cell slack estimator:
    /// `Err` carries the reject reason and the earliest deadline this cell
    /// could have promised.
    pub fn probe_admission(&self, job: &Job, now: SimTime) -> Result<(), (RejectReason, SimTime)> {
        self.admission_probe(job, now)
    }

    /// Every fully-unstarted, non-completed job with its planned completion
    /// per the current schedule (sorted by job id). Jobs with unplanned
    /// tasks report [`SimTime::MAX`]. The federation rebalancer offers the
    /// late ones to cells with more slack.
    pub fn planned_unstarted_jobs(&self) -> Vec<PlannedJob> {
        let mut out: Vec<PlannedJob> = self
            .jobs
            .iter()
            .filter(|(_, s)| s.tasks.iter().all(|t| t.status == TaskStatus::Waiting))
            .map(|(&id, s)| {
                let mut completion = SimTime::ZERO;
                for t in &s.tasks {
                    match self.schedule.get(&t.id) {
                        Some(e) => completion = completion.max(e.end),
                        None => {
                            completion = SimTime::MAX;
                            break;
                        }
                    }
                }
                PlannedJob {
                    job: id,
                    earliest_start: s.job.earliest_start,
                    deadline: s.job.deadline,
                    planned_completion: completion,
                }
            })
            .collect();
        out.sort_unstable_by_key(|p| p.job);
        out
    }

    /// Remove a fully-unstarted job and hand it back for migration to
    /// another manager. Its plan entries, task ownership, and any deferral
    /// are dropped; accumulated retry history does not migrate. Errors
    /// leave the manager unchanged.
    pub fn take_unstarted_job(&mut self, id: JobId) -> Result<Job, ManagerError> {
        let Some(state) = self.jobs.remove(&id) else {
            return Err(ManagerError::UnknownJob(id));
        };
        if state.tasks.iter().any(|t| t.status != TaskStatus::Waiting) {
            self.jobs.insert(id, state);
            return Err(ManagerError::JobNotMigratable(id));
        }
        for t in &state.tasks {
            self.task_owner.remove(&t.id);
            self.schedule.remove(&t.id);
        }
        self.deferred.retain(|&(_, j)| j != id);
        self.tel.jobs_in_system.set(self.jobs.len() as i64);
        Ok(state.job)
    }

    /// Submit an arriving job. Returns whether it joined the scheduling set
    /// or was deferred (§V.E); in the former case the caller should invoke
    /// [`reschedule`](Self::reschedule).
    pub fn submit(&mut self, job: Job, now: SimTime) -> Result<Submitted, ManagerError> {
        debug_assert!(job.validate().is_ok(), "invalid job submitted");
        let id = job.id;
        if self.jobs.contains_key(&id) {
            return Err(ManagerError::DuplicateJob(id));
        }
        if let Some(t) = job.tasks().find(|t| self.task_owner.contains_key(&t.id)) {
            return Err(ManagerError::DuplicateTask(t.id));
        }
        let tasks: Vec<TaskState> = job
            .tasks()
            .map(|t| TaskState {
                id: t.id,
                kind: t.kind,
                exec_time: t.exec_time,
                nominal_exec: t.exec_time,
                req: t.req,
                status: TaskStatus::Waiting,
                failed_attempts: 0,
            })
            .collect();
        for t in &tasks {
            let prev = self.task_owner.insert(t.id, id);
            debug_assert!(prev.is_none(), "task {:?} already known", t.id);
        }
        let remaining = tasks.len();
        let deferral = self.cfg.defer.activation(now, job.earliest_start);
        self.jobs.insert(
            id,
            JobState {
                job,
                tasks,
                remaining,
            },
        );
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.jobs.len());
        self.tel.jobs_in_system.set(self.jobs.len() as i64);
        match deferral {
            Some(act) => {
                self.deferred.push((act, id));
                Ok(Submitted::Deferred(act))
            }
            None => Ok(Submitted::Active),
        }
    }

    /// Submit an arriving job through the overload-protection layer
    /// (DESIGN.md §5c): enforce the pending-queue bound (shedding
    /// lowest-value jobs to make room), run the admission probe, and apply
    /// the configured [`AdmissionPolicy`]. With the default configuration
    /// (best-effort policy, unbounded queue) this is exactly
    /// [`submit`](Self::submit).
    ///
    /// `Err` means the submission itself was malformed (duplicate ids);
    /// a rejected-but-well-formed job comes back as
    /// `Ok` with [`AdmissionDecision::Reject`] and `submitted: None`.
    pub fn submit_with_admission(
        &mut self,
        mut job: Job,
        now: SimTime,
    ) -> Result<AdmissionOutcome, ManagerError> {
        // Duplicate checks up front so a malformed submit cannot shed work.
        if self.jobs.contains_key(&job.id) {
            return Err(ManagerError::DuplicateJob(job.id));
        }
        if let Some(t) = job.tasks().find(|t| self.task_owner.contains_key(&t.id)) {
            return Err(ManagerError::DuplicateTask(t.id));
        }

        // Backpressure: bound the pending queue, shedding the lowest-value
        // (farthest-deadline, fully unstarted) jobs to make room for more
        // urgent arrivals. When the arrival itself is the least valuable
        // candidate, it is the one refused.
        let mut shed = Vec::new();
        if let Some(limit) = self.cfg.admission.max_pending_jobs {
            while self.jobs.len() >= limit.max(1) {
                match self.shed_victim() {
                    Some((victim, victim_deadline)) if victim_deadline > job.deadline => {
                        self.stats.jobs_shed += 1;
                        self.tel.shed.inc();
                        self.tel.event(
                            now,
                            telemetry::EventKind::JobShed,
                            Some(u64::from(victim.0)),
                            "queue full",
                        );
                        shed.push(self.evict(victim)?);
                    }
                    _ => {
                        self.stats.jobs_rejected += 1;
                        self.tel.rejected.inc();
                        self.tel.event(
                            now,
                            telemetry::EventKind::AdmissionRejected,
                            Some(u64::from(job.id.0)),
                            "queue full",
                        );
                        return Ok(AdmissionOutcome {
                            decision: AdmissionDecision::Reject {
                                reason: RejectReason::QueueFull,
                                earliest_feasible_deadline: SimTime::MAX,
                            },
                            submitted: None,
                            shed,
                        });
                    }
                }
            }
        }

        let decision = match self.cfg.admission.policy {
            AdmissionPolicy::BestEffort => AdmissionDecision::Admit,
            policy => match self.admission_probe(&job, now) {
                Ok(()) => AdmissionDecision::Admit,
                Err((reason, earliest)) => {
                    // Renegotiation needs a finite deadline to offer.
                    if policy == AdmissionPolicy::Renegotiate && earliest < SimTime::MAX {
                        self.stats.jobs_renegotiated += 1;
                        self.tel.renegotiated.inc();
                        self.tel.event(
                            now,
                            telemetry::EventKind::AdmissionRenegotiated,
                            Some(u64::from(job.id.0)),
                            "deadline pushed to earliest feasible",
                        );
                        let original = job.deadline;
                        job.deadline = earliest.max(original);
                        AdmissionDecision::AdmitDegraded {
                            original_deadline: original,
                            new_deadline: job.deadline,
                        }
                    } else {
                        self.stats.jobs_rejected += 1;
                        self.tel.rejected.inc();
                        self.tel.event(
                            now,
                            telemetry::EventKind::AdmissionRejected,
                            Some(u64::from(job.id.0)),
                            "admission probe refused",
                        );
                        return Ok(AdmissionOutcome {
                            decision: AdmissionDecision::Reject {
                                reason,
                                earliest_feasible_deadline: earliest,
                            },
                            submitted: None,
                            shed,
                        });
                    }
                }
            },
        };

        let job_id = u64::from(job.id.0);
        let submitted = self.submit(job, now)?;
        self.tel.admitted.inc();
        self.tel.event(
            now,
            telemetry::EventKind::AdmissionAdmitted,
            Some(job_id),
            match decision {
                AdmissionDecision::AdmitDegraded { .. } => "admitted with renegotiated deadline",
                _ => "admitted",
            },
        );
        Ok(AdmissionOutcome {
            decision,
            submitted: Some(submitted),
            shed,
        })
    }

    /// The two-stage admission probe (see [`crate::admission`]): the EDF
    /// demand bound per slot pool, then the greedy witness schedule over
    /// the live model plus the candidate. `Err` carries the reason and
    /// the earliest deadline the manager could have promised.
    fn admission_probe(&self, job: &Job, now: SimTime) -> Result<(), (RejectReason, SimTime)> {
        let up: Vec<Resource> = self
            .resources
            .iter()
            .filter(|r| !self.down.contains(&r.id))
            .cloned()
            .collect();
        let map_slots: u32 = up.iter().map(|r| r.map_capacity).sum();
        let reduce_slots: u32 = up.iter().map(|r| r.reduce_capacity).sum();
        if up.is_empty()
            || (!job.map_tasks.is_empty() && map_slots == 0)
            || (!job.reduce_tasks.is_empty() && reduce_slots == 0)
        {
            return Err((RejectReason::DemandExceedsCapacity, SimTime::MAX));
        }

        // Stage 1: the EDF demand bound per slot pool over outstanding
        // work. Started tasks count only their remaining occupancy.
        let now_ms = now.as_millis();
        let mut map_demand: Vec<(i64, i64)> = Vec::with_capacity(self.jobs.len() + 1);
        let mut reduce_demand: Vec<(i64, i64)> = Vec::with_capacity(self.jobs.len() + 1);
        let (mut map_total, mut reduce_total) = (0i64, 0i64);
        for state in self.jobs.values() {
            let d = state.job.deadline.as_millis();
            let (mut map_work, mut reduce_work) = (0i64, 0i64);
            for t in &state.tasks {
                let w = match t.status {
                    TaskStatus::Completed => 0,
                    TaskStatus::Waiting => t.exec_time.as_millis(),
                    TaskStatus::Started { start, .. } => {
                        (start.as_millis() + t.exec_time.as_millis() - now_ms).max(0)
                    }
                };
                match t.kind {
                    TaskKind::Map => map_work += w,
                    TaskKind::Reduce => reduce_work += w,
                }
            }
            map_demand.push((d, map_work));
            reduce_demand.push((d, reduce_work));
            map_total += map_work;
            reduce_total += reduce_work;
        }
        let cand_map: i64 = job.map_tasks.iter().map(|t| t.exec_time.as_millis()).sum();
        let cand_reduce: i64 = job
            .reduce_tasks
            .iter()
            .map(|t| t.exec_time.as_millis())
            .sum();
        map_demand.push((job.deadline.as_millis(), cand_map));
        reduce_demand.push((job.deadline.as_millis(), cand_reduce));
        map_total += cand_map;
        reduce_total += cand_reduce;
        let bound_violated = edf_demand_violation(now_ms, map_slots, &map_demand).is_some()
            || edf_demand_violation(now_ms, reduce_slots, &reduce_demand).is_some();
        let estimate =
            earliest_feasible_estimate(now, map_slots, SimTime::from_millis(map_total)).max(
                earliest_feasible_estimate(now, reduce_slots, SimTime::from_millis(reduce_total)),
            );

        // Stage 2: greedy witness. Deferred jobs are included — their
        // capacity demand is real even though they are parked.
        let mut inputs =
            Self::collect_inputs(self.cfg.ordering, &self.jobs, &self.deferred, now, true);
        inputs.push(JobInput {
            priority: self.cfg.ordering.priority(job),
            job,
            release: job.earliest_start.max(now),
            tasks: job
                .tasks()
                .map(|t| TaskInput {
                    id: t.id,
                    kind: t.kind,
                    exec_time: t.exec_time,
                    req: t.req,
                    pinned: None,
                })
                .collect(),
        });
        let witness = build_model(&up, &inputs)
            .ok()
            .and_then(|mm| greedy_edf(&mm.model).ok().map(|g| (mm, g)))
            .map(|(mm, g)| {
                let cand: HashSet<TaskId> = job.tasks().map(|t| t.id).collect();
                let mut completion = now;
                for (i, tid) in mm.task_ids.iter().enumerate() {
                    if cand.contains(tid) {
                        let end = SimTime::from_millis(g.starts[i] + mm.model.tasks[i].dur);
                        completion = completion.max(end);
                    }
                }
                completion
            });

        match witness {
            // A violated bound is a proof that the job set (candidate
            // included) cannot all meet its deadlines; the witness
            // completion is still the better renegotiation quote.
            Some(c) if bound_violated => {
                Err((RejectReason::DemandExceedsCapacity, c.max(estimate)))
            }
            Some(c) if c > job.deadline => Err((RejectReason::WitnessLate, c)),
            Some(_) => Ok(()),
            None if bound_violated => Err((RejectReason::DemandExceedsCapacity, estimate)),
            // Witness construction failed (inconsistent pins): feasibility
            // cannot be demonstrated, so non-best-effort policies treat
            // the job as unmeetable.
            None => Err((RejectReason::WitnessLate, estimate)),
        }
    }

    /// The lowest-value shedding candidate: among fully unstarted jobs,
    /// the one with the farthest deadline (deterministic tie-break on id).
    fn shed_victim(&self) -> Option<(JobId, SimTime)> {
        self.jobs
            .iter()
            .filter(|(_, s)| s.tasks.iter().all(|t| t.status == TaskStatus::Waiting))
            .map(|(&id, s)| (id, s.job.deadline))
            .max_by_key(|&(id, d)| (d, id))
    }

    /// Force a job out of the system (shedding); mirrors the abandonment
    /// path of [`task_failed`](Self::task_failed). A victim that is no
    /// longer in the job table is an internal invariant breach, reported
    /// as [`ManagerError::Inconsistent`] rather than a panic.
    fn evict(&mut self, id: JobId) -> Result<AbandonedJob, ManagerError> {
        let Some(state) = self.jobs.remove(&id) else {
            return Err(ManagerError::Inconsistent(
                "shed victim vanished from the job table",
            ));
        };
        let tasks: Vec<TaskId> = state.tasks.iter().map(|t| t.id).collect();
        for t in &tasks {
            self.task_owner.remove(t);
            self.schedule.remove(t);
        }
        self.deferred.retain(|&(_, j)| j != id);
        self.tel.jobs_in_system.set(self.jobs.len() as i64);
        Ok(AbandonedJob {
            job: id,
            tasks,
            deadline: state.job.deadline,
            earliest_start: state.job.earliest_start,
        })
    }

    /// Admit deferred jobs whose activation time has arrived. Returns how
    /// many became active (if > 0 the caller should reschedule).
    pub fn activate_due(&mut self, now: SimTime) -> usize {
        let before = self.deferred.len();
        self.deferred.retain(|&(act, _)| act > now);
        before - self.deferred.len()
    }

    /// Earliest pending activation, if any.
    pub fn next_activation(&self) -> Option<SimTime> {
        self.deferred.iter().map(|&(act, _)| act).min()
    }

    /// The host reports that a task began executing at `now` per the
    /// current schedule. Returns the resource it runs on.
    pub fn task_started(&mut self, task: TaskId, now: SimTime) -> Result<ResourceId, ManagerError> {
        if !self.task_owner.contains_key(&task) {
            return Err(ManagerError::UnknownTask(task));
        }
        let entry = self
            .schedule
            .remove(&task)
            .ok_or(ManagerError::TaskNotScheduled(task))?;
        debug_assert_eq!(entry.start, now, "start time drifted from plan");
        let job = *self
            .task_owner
            .get(&task)
            .ok_or(ManagerError::UnknownTask(task))?;
        let state = self
            .jobs
            .get_mut(&job)
            .ok_or(ManagerError::UnknownJob(job))?;
        let t = state
            .tasks
            .iter_mut()
            .find(|t| t.id == task)
            .ok_or(ManagerError::UnknownTask(task))?;
        debug_assert_eq!(t.status, TaskStatus::Waiting);
        t.status = TaskStatus::Started {
            resource: entry.resource,
            start: now,
        };
        Ok(entry.resource)
    }

    /// The host reports task completion. Returns the job's completion
    /// record when this was its last task (the job then leaves the system,
    /// Table 2 lines 13–16).
    pub fn task_completed(
        &mut self,
        task: TaskId,
        now: SimTime,
    ) -> Result<Option<JobCompletion>, ManagerError> {
        let job = *self
            .task_owner
            .get(&task)
            .ok_or(ManagerError::UnknownTask(task))?;
        let state = self
            .jobs
            .get_mut(&job)
            .ok_or(ManagerError::UnknownJob(job))?;
        let t = state
            .tasks
            .iter_mut()
            .find(|t| t.id == task)
            .ok_or(ManagerError::UnknownTask(task))?;
        match t.status {
            TaskStatus::Started { start, .. } => {
                // Stragglers finish after start + e_t; completion can never
                // precede the start.
                debug_assert!(now >= start, "completion at {now} precedes start {start}");
            }
            _ => return Err(ManagerError::TaskNotRunning(task)),
        }
        t.status = TaskStatus::Completed;
        state.remaining -= 1;
        if state.remaining == 0 {
            let state = self
                .jobs
                .remove(&job)
                .ok_or(ManagerError::UnknownJob(job))?;
            for t in &state.tasks {
                self.task_owner.remove(&t.id);
            }
            self.tel.jobs_in_system.set(self.jobs.len() as i64);
            Ok(Some(JobCompletion {
                job,
                completion: now,
                deadline: state.job.deadline,
                earliest_start: state.job.earliest_start,
                late: now > state.job.deadline,
            }))
        } else {
            Ok(None)
        }
    }

    /// The host reports that a running task's execution time is now known
    /// to differ from its estimate (a detected straggler). The revised
    /// value is carried into subsequent scheduling rounds so the solver
    /// plans around the longer occupancy; the caller should reschedule.
    pub fn task_duration_revised(
        &mut self,
        task: TaskId,
        new_exec: SimTime,
    ) -> Result<(), ManagerError> {
        let job = *self
            .task_owner
            .get(&task)
            .ok_or(ManagerError::UnknownTask(task))?;
        let state = self
            .jobs
            .get_mut(&job)
            .ok_or(ManagerError::UnknownJob(job))?;
        let t = state
            .tasks
            .iter_mut()
            .find(|t| t.id == task)
            .ok_or(ManagerError::UnknownTask(task))?;
        match t.status {
            TaskStatus::Started { .. } => {
                t.exec_time = new_exec;
                Ok(())
            }
            _ => Err(ManagerError::TaskNotRunning(task)),
        }
    }

    /// The host reports that a running task's attempt failed at `now`.
    /// Charges one failed attempt; within the retry budget the task goes
    /// back to the waiting queue (its execution time reset to the nominal
    /// `e_t`) and the caller should reschedule. Beyond the budget the whole
    /// job is abandoned and leaves the system.
    pub fn task_failed(
        &mut self,
        task: TaskId,
        _now: SimTime,
    ) -> Result<FailureAction, ManagerError> {
        let job = *self
            .task_owner
            .get(&task)
            .ok_or(ManagerError::UnknownTask(task))?;
        let state = self
            .jobs
            .get_mut(&job)
            .ok_or(ManagerError::UnknownJob(job))?;
        let t = state
            .tasks
            .iter_mut()
            .find(|t| t.id == task)
            .ok_or(ManagerError::UnknownTask(task))?;
        if !matches!(t.status, TaskStatus::Started { .. }) {
            return Err(ManagerError::TaskNotRunning(task));
        }
        self.stats.tasks_failed += 1;
        self.tel.tasks_failed.inc();
        t.failed_attempts += 1;
        if t.failed_attempts > self.cfg.retry_budget {
            self.stats.jobs_abandoned += 1;
            self.tel.jobs_abandoned.inc();
            let state = self
                .jobs
                .remove(&job)
                .ok_or(ManagerError::UnknownJob(job))?;
            let tasks: Vec<TaskId> = state.tasks.iter().map(|t| t.id).collect();
            for id in &tasks {
                self.task_owner.remove(id);
                self.schedule.remove(id);
            }
            self.deferred.retain(|&(_, j)| j != job);
            self.tel.jobs_in_system.set(self.jobs.len() as i64);
            return Ok(FailureAction::JobAbandoned(AbandonedJob {
                job,
                tasks,
                deadline: state.job.deadline,
                earliest_start: state.job.earliest_start,
            }));
        }
        let failed_attempts = t.failed_attempts;
        t.exec_time = t.nominal_exec;
        t.status = TaskStatus::Waiting;
        self.stats.tasks_requeued += 1;
        self.tel.tasks_requeued.inc();
        Ok(FailureAction::Requeued { failed_attempts })
    }

    /// The host reports that a resource crashed at `now`. The resource is
    /// excluded from subsequent scheduling rounds; every task running on it
    /// is un-pinned and requeued (without charging its retry budget — a
    /// machine crash is not the task's fault), and planned-but-unstarted
    /// work assigned to it is dropped from the current plan. Returns the
    /// interrupted (previously running) tasks; the caller should invalidate
    /// any events held for them and reschedule.
    pub fn resource_down(
        &mut self,
        rid: ResourceId,
        _now: SimTime,
    ) -> Result<Vec<TaskId>, ManagerError> {
        if !self.resources.iter().any(|r| r.id == rid) {
            return Err(ManagerError::UnknownResource(rid));
        }
        if !self.down.insert(rid) {
            return Err(ManagerError::ResourceAlreadyDown(rid));
        }
        let mut interrupted = Vec::new();
        for state in self.jobs.values_mut() {
            for t in state.tasks.iter_mut() {
                if matches!(t.status, TaskStatus::Started { resource, .. } if resource == rid) {
                    t.exec_time = t.nominal_exec;
                    t.status = TaskStatus::Waiting;
                    interrupted.push(t.id);
                }
            }
        }
        self.schedule.retain(|_, e| e.resource != rid);
        self.invalidate_round_cache();
        interrupted.sort_unstable();
        self.stats.tasks_requeued += interrupted.len() as u64;
        self.tel.tasks_requeued.add(interrupted.len() as u64);
        self.tel.resources_down.set(self.down.len() as i64);
        Ok(interrupted)
    }

    /// Drop the cross-round cache (resource availability changed — the
    /// pool fingerprint would reject it anyway, but dropping eagerly
    /// keeps placements onto vanished resources out of the manager).
    fn invalidate_round_cache(&mut self) {
        if self.cache.take().is_some() {
            self.stats.cache_invalidations += 1;
            self.tel.cache_invalidations.inc();
        }
    }

    /// The host reports that a crashed resource recovered at `now`; it
    /// rejoins the pool on the next scheduling round (the caller should
    /// reschedule to use the regained capacity).
    pub fn resource_up(&mut self, rid: ResourceId, _now: SimTime) -> Result<(), ManagerError> {
        if !self.resources.iter().any(|r| r.id == rid) {
            return Err(ManagerError::UnknownResource(rid));
        }
        if !self.down.remove(&rid) {
            return Err(ManagerError::ResourceNotDown(rid));
        }
        self.invalidate_round_cache();
        self.tel.resources_down.set(self.down.len() as i64);
        Ok(())
    }

    /// Run one scheduling round (Table 2). Remaps and reschedules every
    /// active, unstarted task; pins running tasks. Returns the new plan for
    /// unstarted tasks (the host should arm start events from it).
    pub fn reschedule(&mut self, now: SimTime) -> Vec<ScheduleEntry> {
        let t0 = Instant::now();

        // Assemble model inputs: active jobs with outstanding tasks.
        let inputs =
            Self::collect_inputs(self.cfg.ordering, &self.jobs, &self.deferred, now, false);

        if inputs.is_empty() {
            self.schedule.clear();
            return Vec::new();
        }

        // Exclude crashed resources from the round. With the whole cluster
        // down there is nothing to plan onto; keep the work queued until a
        // resource recovers.
        let up: Vec<Resource> = self
            .resources
            .iter()
            .filter(|r| !self.down.contains(&r.id))
            .cloned()
            .collect();
        if up.is_empty() {
            self.schedule.clear();
            return Vec::new();
        }

        let n_tasks: usize = inputs.iter().map(|j| j.tasks.len()).sum();
        let mut params = self.cfg.budget.params_for(n_tasks);
        // Budget controller: a shrunken scale trims every per-round limit
        // and escalates the degradation ladder (see solve_round).
        if self.budget_scale < 1.0 {
            params = params.scaled(self.budget_scale);
        }
        let pressure = self.pressure_level();

        // Cross-round reuse: replay the previous round's placements for
        // jobs whose fingerprint is unchanged under the same resource
        // pool. Pinned tasks are already constrained by the model and
        // need no hint.
        let pool_fp = pool_fingerprint(&up);
        let job_fps: Vec<(JobId, u64)> = inputs
            .iter()
            .map(|i| (i.job.id, job_fingerprint(i)))
            .collect();
        let hints: Option<Vec<Option<(ResourceId, SimTime)>>> = if self.cfg.reuse_rounds {
            self.cache
                .as_ref()
                .filter(|c| c.pool_fp == pool_fp)
                .map(|c| {
                    inputs
                        .iter()
                        .zip(&job_fps)
                        .flat_map(|(inp, &(_, fp))| {
                            let fresh = c.jobs.get(&inp.job.id) == Some(&fp);
                            inp.tasks.iter().map(move |t| {
                                if fresh && t.pinned.is_none() {
                                    c.placements.get(&t.id).copied()
                                } else {
                                    None
                                }
                            })
                        })
                        .collect()
                })
        } else {
            None
        };
        let warm = hints
            .as_ref()
            .is_some_and(|h| h.iter().any(|x| x.is_some()));

        let (placements, outcome, degraded, rung) =
            match Self::solve_round(&self.cfg, &up, &inputs, &params, pressure, hints.as_deref()) {
                Ok(round) => round,
                Err(err) => {
                    // Every rung failed. Leave the work queued with no plan;
                    // the next round (new arrival, completion, recovery)
                    // retries from a different state.
                    drop(inputs);
                    self.stats.invocations += 1;
                    self.stats.failed_rounds += 1;
                    let elapsed = t0.elapsed();
                    self.stats.total_solve += elapsed;
                    self.observe_round_latency(elapsed);
                    self.tel.rounds_failed.inc();
                    self.tel.round_solve_us.record(elapsed.as_micros() as u64);
                    self.tel
                        .event(now, telemetry::EventKind::RoundSolved, None, "round failed");
                    self.last_error = Some(err);
                    self.schedule.clear();
                    self.cache = None;
                    return Vec::new();
                }
            };

        // Remember this round for the next one's warm start.
        if self.cfg.reuse_rounds {
            self.cache = Some(RoundCache {
                pool_fp,
                jobs: job_fps.iter().copied().collect(),
                placements: placements.iter().map(|&(t, r, s)| (t, (r, s))).collect(),
            });
        }
        if warm {
            self.stats.warm_rounds += 1;
            self.tel.warm_rounds.inc();
        }

        // Install: entries for unstarted tasks only. A placement that
        // refers to state the manager does not hold fails the round (no
        // panic) and leaves the work queued for the next round.
        drop(inputs);
        match self.planned_entries(&placements, now) {
            Ok(plan) => self.schedule = plan,
            Err(err) => {
                self.stats.invocations += 1;
                self.stats.failed_rounds += 1;
                let elapsed = t0.elapsed();
                self.stats.total_solve += elapsed;
                self.observe_round_latency(elapsed);
                self.tel.rounds_failed.inc();
                self.tel.round_solve_us.record(elapsed.as_micros() as u64);
                self.tel.event(
                    now,
                    telemetry::EventKind::RoundSolved,
                    None,
                    "round failed: stale placement",
                );
                self.last_error = Some(err);
                self.schedule.clear();
                self.cache = None;
                return Vec::new();
            }
        }

        self.stats.invocations += 1;
        let elapsed = t0.elapsed();
        self.stats.total_solve += elapsed;
        self.observe_round_latency(elapsed);
        self.stats.total_nodes += outcome.stats.nodes;
        self.stats.max_tasks_in_model = self.stats.max_tasks_in_model.max(n_tasks);
        self.last_error = None;
        self.tel.rung_counter(rung).inc();
        self.tel.round_solve_us.record(elapsed.as_micros() as u64);
        self.tel.solve.record(&outcome.stats);
        self.tel
            .event(now, telemetry::EventKind::RoundSolved, None, rung.name());
        if degraded {
            self.tel.event(
                now,
                telemetry::EventKind::LadderEscalation,
                None,
                rung.name(),
            );
        }
        if rung == RoundRung::Lns {
            self.stats.lns_rounds += 1;
        }
        if degraded {
            self.stats.degraded_rounds += 1;
        } else {
            match outcome.status {
                Status::Optimal => self.stats.optimal_rounds += 1,
                Status::Feasible => self.stats.feasible_rounds += 1,
                // A primary-rung success always carries a solution, but the
                // status can be Unknown when the budget ran out before the
                // warm start was improved; it still counts as a round.
                _ => {}
            }
        }

        let mut entries: Vec<ScheduleEntry> = self.schedule.values().copied().collect();
        entries.sort_by_key(|e| (e.start, e.task));
        entries
    }

    /// Translate a round's placements into schedule entries for the
    /// still-waiting tasks. A placement that refers to a task the manager
    /// does not own surfaces as a typed [`SchedulingError`] (recorded as a
    /// failed round by the caller) rather than a panic.
    fn planned_entries(
        &self,
        placements: &[(TaskId, ResourceId, SimTime)],
        now: SimTime,
    ) -> Result<HashMap<TaskId, ScheduleEntry>, SchedulingError> {
        let _ = now; // only read by the debug assertion below
        let mut plan = HashMap::with_capacity(placements.len());
        for &(tid, rid, start) in placements {
            let job = *self.task_owner.get(&tid).ok_or_else(|| {
                SchedulingError::Inconsistent(format!("placement for unowned task {tid}"))
            })?;
            let state = self.jobs.get(&job).ok_or_else(|| {
                SchedulingError::Inconsistent(format!("task {tid} owned by missing job {job}"))
            })?;
            let t = state.tasks.iter().find(|t| t.id == tid).ok_or_else(|| {
                SchedulingError::Inconsistent(format!("task {tid} not in job {job}"))
            })?;
            if t.status == TaskStatus::Waiting {
                debug_assert!(start >= now, "new start {start} in the past (now {now})");
                plan.insert(
                    tid,
                    ScheduleEntry {
                        task: tid,
                        job,
                        resource: rid,
                        start,
                        end: start + t.exec_time,
                    },
                );
            }
        }
        Ok(plan)
    }

    /// Model inputs for the active (or, for the admission probe, all) jobs
    /// with outstanding tasks: waiting tasks are free, started tasks are
    /// pinned, completed tasks are gone. An associated function taking the
    /// fields it reads so callers keep field-precise borrows.
    fn collect_inputs<'a>(
        ordering: JobOrdering,
        jobs: &'a HashMap<JobId, JobState>,
        deferred: &[(SimTime, JobId)],
        now: SimTime,
        include_deferred: bool,
    ) -> Vec<JobInput<'a>> {
        let deferred_ids: HashSet<JobId> = if include_deferred {
            HashSet::new()
        } else {
            deferred.iter().map(|&(_, j)| j).collect()
        };
        let mut inputs: Vec<JobInput<'a>> = Vec::new();
        let mut ids: Vec<JobId> = jobs.keys().copied().collect();
        ids.sort_unstable(); // deterministic model construction
        for id in ids {
            if deferred_ids.contains(&id) {
                continue;
            }
            let state = &jobs[&id];
            if state.remaining == 0 {
                continue;
            }
            let tasks: Vec<TaskInput> = state
                .tasks
                .iter()
                .filter_map(|t| match t.status {
                    TaskStatus::Completed => None,
                    TaskStatus::Waiting => Some(TaskInput {
                        id: t.id,
                        kind: t.kind,
                        exec_time: t.exec_time,
                        req: t.req,
                        pinned: None,
                    }),
                    TaskStatus::Started { resource, start } => Some(TaskInput {
                        id: t.id,
                        kind: t.kind,
                        exec_time: t.exec_time,
                        req: t.req,
                        pinned: Some((resource, start)),
                    }),
                })
                .collect();
            if tasks.is_empty() {
                continue;
            }
            // Table 2 lines 1–4: releases never lie in the past.
            let release = state.job.earliest_start.max(now);
            inputs.push(JobInput {
                priority: ordering.priority(&state.job),
                job: &state.job,
                release,
                tasks,
            });
        }
        inputs
    }

    /// How hard the budget controller is currently squeezing: 0 = none,
    /// 1 = skip the full-CP second chance, 2 = skip both CP rungs and go
    /// straight to the LNS repair rung, 3 = greedy only.
    fn pressure_level(&self) -> u8 {
        match self.cfg.controller {
            Some(ctl) if self.budget_scale <= ctl.min_scale => 3,
            Some(_) if self.budget_scale < 0.25 => 2,
            Some(_) if self.budget_scale < 0.5 => 1,
            _ => 0,
        }
    }

    /// Feed one round's wall-clock latency to the budget controller:
    /// update the EWMA and shrink/grow the budget scale to keep the EWMA
    /// under the configured ceiling.
    fn observe_round_latency(&mut self, elapsed: Duration) {
        self.stats.max_round_solve = self.stats.max_round_solve.max(elapsed);
        let Some(ctl) = self.cfg.controller else {
            return;
        };
        let e = elapsed.as_secs_f64();
        let ewma = match self.latency_ewma_s {
            Some(prev) => ctl.alpha * e + (1.0 - ctl.alpha) * prev,
            None => e,
        };
        self.latency_ewma_s = Some(ewma);
        let ceiling = ctl.latency_ceiling.as_secs_f64();
        let old = self.budget_scale;
        if ewma > 0.75 * ceiling {
            self.budget_scale = (self.budget_scale * 0.5).max(ctl.min_scale);
        } else if ewma < 0.25 * ceiling && self.budget_scale < 1.0 {
            self.budget_scale = (self.budget_scale * 2.0).min(1.0);
        }
        if self.budget_scale != old {
            self.stats.budget_adaptations += 1;
            self.tel.budget_adaptations.inc();
            self.tel
                .budget_scale_milli
                .set((self.budget_scale * 1000.0).round() as i64);
        }
    }

    /// One pass down the degradation ladder: the configured CP path first
    /// (§V.D split model when `use_split`, else the full model), then the
    /// full CP model as a second chance, then a **pure-LNS repair** of the
    /// greedy incumbent (strong propagation confined to small frozen
    /// windows — far cheaper than full CP but usually far better than
    /// greedy), and finally greedy EDF — which cannot time out and
    /// succeeds on any consistent state. Each rung's result is audited
    /// (when `verify_schedules`) before being accepted; an audit failure
    /// falls through to the next rung rather than installing a bad plan.
    /// Under budget-controller `pressure` the ladder is entered lower
    /// down: level 1 skips the full-CP second chance, level 2 skips both
    /// CP rungs and opens with LNS, level 3 goes straight to greedy.
    /// Returns the placements, the solver outcome they came from, whether
    /// the primary rung was abandoned, and which rung served the round.
    fn solve_round(
        cfg: &MrcpConfig,
        resources: &[Resource],
        inputs: &[JobInput<'_>],
        params: &SolveParams,
        pressure: u8,
        hints: Option<&RoundHints>,
    ) -> Result<RoundResult, SchedulingError> {
        let audit_ok = |placements: &[(TaskId, ResourceId, SimTime)]| -> Result<(), String> {
            if cfg.verify_schedules {
                crate::split::audit(resources, inputs, placements)
            } else {
                Ok(())
            }
        };
        let pp = PortfolioParams {
            base: params.clone(),
            workers: cfg.budget.workers,
            seed: 0,
        };

        let mut degraded = false;
        // Rung 1: the §V.D split path, when configured and not under
        // heavy pressure.
        if cfg.use_split && pressure < 2 {
            match split_solve_portfolio(resources, inputs, &pp, hints) {
                Ok(s) if audit_ok(&s.placements).is_ok() => {
                    return Ok((s.placements, s.outcome, false, RoundRung::SplitCp));
                }
                _ => degraded = true,
            }
        }

        // Rung 2: the monolithic multi-resource model. Build it once; the
        // greedy rung reuses it.
        let mm: MappedModel =
            build_model(resources, inputs).map_err(SchedulingError::ModelBuild)?;
        let placements_of = |mm: &MappedModel, best: &cpsolve::solution::Solution| {
            mm.task_ids
                .iter()
                .enumerate()
                .map(|(i, &tid)| {
                    (
                        tid,
                        mm.res_ids[best.resource[i].idx()],
                        SimTime::from_millis(best.starts[i]),
                    )
                })
                .collect::<Vec<_>>()
        };
        // Hint-fed incumbent on the full model (hints carry the real
        // resource assignment too); shared by the full-CP and LNS rungs.
        let hinted_initial = hints.and_then(|h| {
            let rindex: HashMap<ResourceId, u32> = mm
                .res_ids
                .iter()
                .enumerate()
                .map(|(i, &r)| (r, i as u32))
                .collect();
            let full: Vec<Hint> = h
                .iter()
                .map(|o| o.and_then(|(r, s)| rindex.get(&r).map(|&i| (ResRef(i), s.as_millis()))))
                .collect();
            greedy_edf_with_hints(&mm.model, &full).ok()
        });
        if pressure == 0 {
            let mut pp = pp.clone();
            pp.base.initial = hinted_initial.clone();
            let out = solve_portfolio(&mm.model, &pp);
            if let Some(best) = out.best.as_ref() {
                let placements = placements_of(&mm, best);
                if audit_ok(&placements).is_ok() {
                    return Ok((placements, out, degraded, RoundRung::FullCp));
                }
            }
        }

        // Rung 3: pure-LNS repair — all budget in the LNS phase, repairing
        // the greedy (or hint-fed) incumbent through restricted window
        // re-solves. The primary rung at pressure 2; a second chance when
        // the CP rungs above came back empty or failed their audit.
        if cfg.budget.lns && pressure < 3 {
            let mut lp = pp.clone();
            lp.base.warm_start = true;
            lp.base.initial = hinted_initial;
            lp.base.lns = cpsolve::LnsParams {
                enabled: true,
                budget_frac: 1.0,
                ..lp.base.lns
            };
            let out = solve_portfolio(&mm.model, &lp);
            if let Some(best) = out.best.as_ref() {
                let placements = placements_of(&mm, best);
                if audit_ok(&placements).is_ok() {
                    return Ok((placements, out, degraded, RoundRung::Lns));
                }
            }
        }

        // Rung 4: greedy EDF, wrapped as a feasible outcome. An audit
        // failure here is terminal — nothing further to fall back to.
        // Pressure-escalated rounds land here by design and count as
        // degraded, like any other round the CP rungs did not serve.
        let g = greedy_edf(&mm.model).map_err(SchedulingError::NoSolution)?;
        let placements = placements_of(&mm, &g);
        audit_ok(&placements).map_err(SchedulingError::AuditFailed)?;
        let outcome = Outcome {
            status: Status::Feasible,
            best: Some(g),
            stats: SolveStats::default(),
        };
        Ok((placements, outcome, true, RoundRung::Greedy))
    }

    /// The current plan for unstarted tasks, sorted by start time.
    pub fn current_schedule(&self) -> Vec<ScheduleEntry> {
        let mut entries: Vec<ScheduleEntry> = self.schedule.values().copied().collect();
        entries.sort_by_key(|e| (e.start, e.task));
        entries
    }

    /// Capture a plain-data snapshot of the manager's mutable state (see
    /// [`ManagerImage`]). Two managers in the same logical state produce
    /// identical images. [`last_scheduling_error`](Self::last_scheduling_error)
    /// is diagnostic-only and deliberately not captured; a restored
    /// manager starts with none.
    pub fn image(&self) -> ManagerImage {
        let mut jobs: Vec<JobImage> = self
            .jobs
            .values()
            .map(|s| JobImage {
                job: s.job.clone(),
                tasks: s
                    .tasks
                    .iter()
                    .map(|t| TaskImage {
                        id: t.id,
                        kind: t.kind,
                        exec_time: t.exec_time,
                        nominal_exec: t.nominal_exec,
                        req: t.req,
                        status: match t.status {
                            TaskStatus::Waiting => TaskStatusImage::Waiting,
                            TaskStatus::Started { resource, start } => {
                                TaskStatusImage::Started { resource, start }
                            }
                            TaskStatus::Completed => TaskStatusImage::Completed,
                        },
                        failed_attempts: t.failed_attempts,
                    })
                    .collect(),
            })
            .collect();
        jobs.sort_by_key(|j| j.job.id);
        let mut deferred = self.deferred.clone();
        deferred.sort_unstable();
        let mut schedule: Vec<ScheduleEntry> = self.schedule.values().copied().collect();
        schedule.sort_by_key(|e| e.task);
        let mut down: Vec<ResourceId> = self.down.iter().copied().collect();
        down.sort_unstable();
        let cache = self.cache.as_ref().map(|c| {
            let mut fps: Vec<(JobId, u64)> = c.jobs.iter().map(|(&j, &fp)| (j, fp)).collect();
            fps.sort_unstable_by_key(|&(j, _)| j);
            let mut placements: Vec<(TaskId, ResourceId, SimTime)> =
                c.placements.iter().map(|(&t, &(r, s))| (t, r, s)).collect();
            placements.sort_unstable_by_key(|&(t, _, _)| t);
            RoundCacheImage {
                pool_fp: c.pool_fp,
                jobs: fps,
                placements,
            }
        });
        ManagerImage {
            jobs,
            deferred,
            schedule,
            down,
            budget_scale: self.budget_scale,
            latency_ewma_s: self.latency_ewma_s,
            cache,
            stats: self.stats,
        }
    }

    /// Rebuild a manager from a [`ManagerImage`] over the original
    /// configuration and resource pool. Derived indices (task ownership,
    /// per-job remaining counts) are reconstructed from the image; an
    /// image that references a job, task, or resource inconsistently is
    /// rejected as [`ManagerError::Inconsistent`] without leaving a
    /// partial manager behind.
    pub fn restore(
        cfg: MrcpConfig,
        resources: Vec<Resource>,
        image: ManagerImage,
    ) -> Result<MrcpRm, ManagerError> {
        let mut rm = MrcpRm::new(cfg, resources);
        let mut jobs = HashMap::with_capacity(image.jobs.len());
        let mut task_owner = HashMap::new();
        for ji in image.jobs {
            let id = ji.job.id;
            let tasks: Vec<TaskState> = ji
                .tasks
                .iter()
                .map(|t| TaskState {
                    id: t.id,
                    kind: t.kind,
                    exec_time: t.exec_time,
                    nominal_exec: t.nominal_exec,
                    req: t.req,
                    status: match t.status {
                        TaskStatusImage::Waiting => TaskStatus::Waiting,
                        TaskStatusImage::Started { resource, start } => {
                            TaskStatus::Started { resource, start }
                        }
                        TaskStatusImage::Completed => TaskStatus::Completed,
                    },
                    failed_attempts: t.failed_attempts,
                })
                .collect();
            for t in &tasks {
                if task_owner.insert(t.id, id).is_some() {
                    return Err(ManagerError::Inconsistent("snapshot lists a task twice"));
                }
            }
            let remaining = tasks
                .iter()
                .filter(|t| t.status != TaskStatus::Completed)
                .count();
            let state = JobState {
                job: ji.job,
                tasks,
                remaining,
            };
            if jobs.insert(id, state).is_some() {
                return Err(ManagerError::Inconsistent("snapshot lists a job twice"));
            }
        }
        for &(_, j) in &image.deferred {
            if !jobs.contains_key(&j) {
                return Err(ManagerError::Inconsistent("snapshot defers an unknown job"));
            }
        }
        let mut schedule = HashMap::with_capacity(image.schedule.len());
        for e in image.schedule {
            if !task_owner.contains_key(&e.task) {
                return Err(ManagerError::Inconsistent(
                    "snapshot schedules an unknown task",
                ));
            }
            if schedule.insert(e.task, e).is_some() {
                return Err(ManagerError::Inconsistent(
                    "snapshot schedules a task twice",
                ));
            }
        }
        let mut down = HashSet::with_capacity(image.down.len());
        for r in image.down {
            if !rm.resources.iter().any(|x| x.id == r) {
                return Err(ManagerError::Inconsistent(
                    "snapshot downs an unknown resource",
                ));
            }
            if !down.insert(r) {
                return Err(ManagerError::Inconsistent(
                    "snapshot downs a resource twice",
                ));
            }
        }
        rm.jobs = jobs;
        rm.task_owner = task_owner;
        rm.schedule = schedule;
        rm.down = down;
        rm.deferred = image.deferred;
        rm.budget_scale = image.budget_scale;
        rm.latency_ewma_s = image.latency_ewma_s;
        rm.cache = image.cache.map(|c| RoundCache {
            pool_fp: c.pool_fp,
            jobs: c.jobs.into_iter().collect(),
            placements: c
                .placements
                .into_iter()
                .map(|(t, r, s)| (t, (r, s)))
                .collect(),
        });
        rm.stats = image.stats;
        Ok(rm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::model::homogeneous_cluster;
    use workload::Task;

    fn mk_job(id: u32, arrival: i64, s: i64, d: i64, maps: &[i64], reduces: &[i64]) -> Job {
        let mut next = id * 1000;
        let mut task = |kind, secs: i64| {
            let t = Task {
                id: TaskId(next),
                job: JobId(id),
                kind,
                exec_time: SimTime::from_secs(secs),
                req: 1,
            };
            next += 1;
            t
        };
        Job {
            id: JobId(id),
            arrival: SimTime::from_secs(arrival),
            earliest_start: SimTime::from_secs(s),
            deadline: SimTime::from_secs(d),
            map_tasks: maps.iter().map(|&e| task(TaskKind::Map, e)).collect(),
            reduce_tasks: reduces.iter().map(|&e| task(TaskKind::Reduce, e)).collect(),
            precedences: vec![],
        }
    }

    fn manager() -> MrcpRm {
        MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(2, 1, 1))
    }

    #[test]
    fn single_job_lifecycle() {
        let mut rm = manager();
        let job = mk_job(0, 0, 0, 100, &[10], &[5]);
        assert_eq!(rm.submit(job, SimTime::ZERO), Ok(Submitted::Active));
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 2);
        let map = plan.iter().find(|e| e.task == TaskId(0)).unwrap();
        let red = plan.iter().find(|e| e.task == TaskId(1)).unwrap();
        assert_eq!(map.start, SimTime::ZERO);
        assert!(red.start >= map.end, "barrier respected");

        assert_eq!(rm.task_started(map.task, map.start), Ok(map.resource));
        assert_eq!(rm.task_completed(map.task, map.end), Ok(None));
        rm.task_started(red.task, red.start).unwrap();
        let done = rm.task_completed(red.task, red.end).unwrap().unwrap();
        assert!(!done.late);
        assert_eq!(done.job, JobId(0));
        assert_eq!(rm.jobs_in_system(), 0);
        assert_eq!(rm.stats().invocations, 1);
    }

    #[test]
    fn deferral_parks_future_jobs() {
        let mut rm = manager();
        let job = mk_job(0, 0, 500, 1000, &[10], &[]);
        match rm.submit(job, SimTime::ZERO) {
            Ok(Submitted::Deferred(act)) => assert_eq!(act, SimTime::from_secs(500)),
            s => panic!("expected deferral, got {s:?}"),
        }
        // A reschedule round excludes the deferred job entirely.
        let plan = rm.reschedule(SimTime::ZERO);
        assert!(plan.is_empty());
        assert_eq!(rm.next_activation(), Some(SimTime::from_secs(500)));
        assert_eq!(rm.activate_due(SimTime::from_secs(499)), 0);
        assert_eq!(rm.activate_due(SimTime::from_secs(500)), 1);
        let plan = rm.reschedule(SimTime::from_secs(500));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].start, SimTime::from_secs(500));
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn defer_disabled_schedules_immediately() {
        let mut cfg = MrcpConfig::default();
        cfg.defer = DeferPolicy::disabled();
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 1, 1));
        let job = mk_job(0, 0, 500, 1000, &[10], &[]);
        assert_eq!(rm.submit(job, SimTime::ZERO), Ok(Submitted::Active));
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 1);
        // Still respects s_j even though scheduled early.
        assert_eq!(plan[0].start, SimTime::from_secs(500));
    }

    #[test]
    fn rescheduling_pins_started_tasks() {
        let mut rm = manager();
        let j0 = mk_job(0, 0, 0, 100, &[20], &[]);
        rm.submit(j0, SimTime::ZERO).unwrap();
        let plan = rm.reschedule(SimTime::ZERO);
        let e0 = plan[0];
        rm.task_started(e0.task, e0.start).unwrap();

        // A second, urgent job arrives mid-flight.
        let j1 = mk_job(1, 5, 5, 30, &[10], &[]);
        rm.submit(j1, SimTime::from_secs(5)).unwrap();
        let plan = rm.reschedule(SimTime::from_secs(5));
        // Only the new job's task is in the plan; the running task is pinned.
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].job, JobId(1));
        // It does not share r0's busy map slot before t=20 — either it's on
        // the other resource at 5 or behind the pin.
        if plan[0].resource == e0.resource {
            assert!(plan[0].start >= e0.end);
        } else {
            assert_eq!(plan[0].start, SimTime::from_secs(5));
        }
    }

    #[test]
    fn new_urgent_job_preempts_planned_slot() {
        // One 1/1 resource. Job A planned but not started; urgent job B
        // arrives and must take the slot first (the paper's motivating
        // example for remapping unstarted tasks).
        let mut rm = MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(1, 1, 1));
        let a = mk_job(0, 0, 0, 200, &[10], &[]);
        rm.submit(a, SimTime::ZERO).unwrap();
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan[0].start, SimTime::ZERO);

        let b = mk_job(1, 0, 0, 12, &[10], &[]);
        rm.submit(b, SimTime::ZERO).unwrap();
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 2);
        let ea = plan.iter().find(|e| e.job == JobId(0)).unwrap();
        let eb = plan.iter().find(|e| e.job == JobId(1)).unwrap();
        assert_eq!(eb.start, SimTime::ZERO, "urgent job moved to the front");
        assert!(ea.start >= eb.end);
    }

    #[test]
    fn full_model_path_matches_split_feasibility() {
        let cfg = MrcpConfig {
            use_split: false,
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 2, 2));
        for i in 0..3 {
            rm.submit(mk_job(i, 0, 0, 10_000, &[10, 20], &[5]), SimTime::ZERO)
                .unwrap();
        }
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 9);
        assert_eq!(rm.stats().invocations, 1);
    }

    #[test]
    fn duplicate_submission_is_rejected() {
        let mut rm = manager();
        rm.submit(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            rm.submit(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO),
            Err(ManagerError::DuplicateJob(JobId(0)))
        );
        // The rejection left the original intact.
        assert_eq!(rm.jobs_in_system(), 1);
        assert_eq!(rm.reschedule(SimTime::ZERO).len(), 1);
    }

    #[test]
    fn lifecycle_notifications_validate_state() {
        let mut rm = manager();
        rm.submit(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO)
            .unwrap();
        // Started before any schedule exists.
        assert_eq!(
            rm.task_started(TaskId(0), SimTime::ZERO),
            Err(ManagerError::TaskNotScheduled(TaskId(0)))
        );
        // Completion of a task that never started.
        assert_eq!(
            rm.task_completed(TaskId(0), SimTime::ZERO),
            Err(ManagerError::TaskNotRunning(TaskId(0)))
        );
        // Unknown ids.
        assert_eq!(
            rm.task_started(TaskId(999), SimTime::ZERO),
            Err(ManagerError::UnknownTask(TaskId(999)))
        );
        assert_eq!(
            rm.task_failed(TaskId(999), SimTime::ZERO),
            Err(ManagerError::UnknownTask(TaskId(999)))
        );
        assert_eq!(
            rm.resource_down(ResourceId(42), SimTime::ZERO),
            Err(ManagerError::UnknownResource(ResourceId(42)))
        );
    }

    #[test]
    fn failed_task_requeues_within_budget_then_abandons() {
        let cfg = MrcpConfig {
            retry_budget: 1,
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(1, 1, 1));
        rm.submit(mk_job(0, 0, 0, 100, &[10], &[5]), SimTime::ZERO)
            .unwrap();
        let plan = rm.reschedule(SimTime::ZERO);
        let map = *plan.iter().find(|e| e.task == TaskId(0)).unwrap();
        rm.task_started(map.task, map.start).unwrap();

        // First failure: within the budget, requeued.
        let act = rm.task_failed(map.task, SimTime::from_secs(4)).unwrap();
        assert_eq!(act, FailureAction::Requeued { failed_attempts: 1 });
        assert_eq!(rm.stats().tasks_failed, 1);
        assert_eq!(rm.stats().tasks_requeued, 1);

        // The retry shows up in the next plan.
        let plan = rm.reschedule(SimTime::from_secs(4));
        let retry = *plan.iter().find(|e| e.task == TaskId(0)).unwrap();
        assert!(retry.start >= SimTime::from_secs(4));
        rm.task_started(retry.task, retry.start).unwrap();

        // Second failure exhausts the budget: the job is abandoned.
        match rm.task_failed(retry.task, retry.start + SimTime::from_secs(1)) {
            Ok(FailureAction::JobAbandoned(ab)) => {
                assert_eq!(ab.job, JobId(0));
                assert_eq!(ab.tasks.len(), 2, "all of the job's tasks are reported");
            }
            other => panic!("expected abandonment, got {other:?}"),
        }
        assert_eq!(rm.jobs_in_system(), 0);
        assert_eq!(rm.stats().jobs_abandoned, 1);
        assert!(rm.reschedule(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn resource_crash_requeues_without_charging_budget() {
        let mut rm = manager();
        rm.submit(mk_job(0, 0, 0, 1000, &[10, 10], &[]), SimTime::ZERO)
            .unwrap();
        let plan = rm.reschedule(SimTime::ZERO);
        let e0 = plan[0];
        rm.task_started(e0.task, e0.start).unwrap();

        let interrupted = rm
            .resource_down(e0.resource, SimTime::from_secs(2))
            .unwrap();
        assert_eq!(interrupted, vec![e0.task]);
        assert_eq!(rm.down_resources(), vec![e0.resource]);
        assert_eq!(
            rm.stats().tasks_failed,
            0,
            "crashes do not charge the retry budget"
        );
        // Double-down is rejected.
        assert_eq!(
            rm.resource_down(e0.resource, SimTime::from_secs(2)),
            Err(ManagerError::ResourceAlreadyDown(e0.resource))
        );

        // Replanning avoids the crashed machine entirely.
        let plan = rm.reschedule(SimTime::from_secs(2));
        assert_eq!(plan.len(), 2);
        for e in &plan {
            assert_ne!(e.resource, e0.resource, "down resource must not be used");
        }

        // Recovery brings it back into the pool.
        rm.resource_up(e0.resource, SimTime::from_secs(3)).unwrap();
        assert!(rm.down_resources().is_empty());
        assert_eq!(
            rm.resource_up(e0.resource, SimTime::from_secs(3)),
            Err(ManagerError::ResourceNotDown(e0.resource))
        );
        let plan = rm.reschedule(SimTime::from_secs(3));
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn whole_cluster_down_keeps_work_queued() {
        let mut rm = MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(1, 1, 1));
        rm.submit(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO)
            .unwrap();
        let rid = rm.resources()[0].id;
        rm.resource_down(rid, SimTime::ZERO).unwrap();
        assert!(rm.reschedule(SimTime::ZERO).is_empty());
        assert_eq!(rm.jobs_in_system(), 1, "work waits for recovery");
        rm.resource_up(rid, SimTime::from_secs(1)).unwrap();
        assert_eq!(rm.reschedule(SimTime::from_secs(1)).len(), 1);
    }

    #[test]
    fn straggler_revision_is_planned_around() {
        let mut rm = MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(1, 1, 1));
        rm.submit(mk_job(0, 0, 0, 1000, &[10, 10], &[]), SimTime::ZERO)
            .unwrap();
        let plan = rm.reschedule(SimTime::ZERO);
        let first = plan[0];
        let second = plan[1];
        rm.task_started(first.task, first.start).unwrap();
        // The running task is discovered to take 30 s instead of 10.
        rm.task_duration_revised(first.task, SimTime::from_secs(30))
            .unwrap();
        let plan = rm.reschedule(SimTime::from_secs(1));
        let moved = plan.iter().find(|e| e.task == second.task).unwrap();
        assert!(
            moved.start >= SimTime::from_secs(30),
            "successor must wait for the stretched occupancy, got {}",
            moved.start
        );
    }

    #[test]
    fn forced_unknown_budget_falls_back_to_greedy() {
        // node_limit 0 + warm starts off force Status::Unknown from every CP
        // rung; with the LNS rung also disabled, the greedy rung must still
        // produce a full schedule.
        let cfg = MrcpConfig {
            budget: SolveBudget {
                node_limit: 0,
                fail_limit: 0,
                time_limit_ms: Some(0),
                adaptive: None,
                warm_start: false,
                lns: false,
                ..SolveBudget::default()
            },
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 1, 1));
        for i in 0..3 {
            rm.submit(mk_job(i, 0, 0, 10_000, &[10, 20], &[5]), SimTime::ZERO)
                .unwrap();
        }
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 9, "greedy fallback schedules everything");
        assert_eq!(rm.stats().degraded_rounds, 1);
        assert_eq!(rm.stats().failed_rounds, 0);
        assert!(rm.last_scheduling_error().is_none());
    }

    #[test]
    fn empty_reschedule_is_harmless() {
        let mut rm = manager();
        assert!(rm.reschedule(SimTime::ZERO).is_empty());
        assert_eq!(rm.stats().invocations, 0);
    }

    #[test]
    fn adaptive_budget_scales_with_model_size() {
        let base = SolveBudget {
            node_limit: 10_000,
            fail_limit: 10_000,
            time_limit_ms: None,
            adaptive: Some(AdaptiveBudget {
                reference_tasks: 100,
                floor_nodes: 500,
            }),
            warm_start: true,
            workers: 1,
            ..SolveBudget::default()
        };
        // At or below the reference size: unscaled.
        assert_eq!(base.params_for(50).node_limit, 10_000);
        assert_eq!(base.params_for(100).node_limit, 10_000);
        // Twice the reference: half the nodes.
        assert_eq!(base.params_for(200).node_limit, 5_000);
        // Enormous model: clamped to the floor.
        assert_eq!(base.params_for(10_000_000).node_limit, 500);
        // Without adaptive: constant.
        let fixed = SolveBudget::default();
        assert_eq!(
            fixed.params_for(10).node_limit,
            fixed.params_for(100_000).node_limit
        );
    }

    #[test]
    fn adaptive_budget_runs_end_to_end() {
        let mut cfg = MrcpConfig::default();
        cfg.budget.adaptive = Some(AdaptiveBudget {
            reference_tasks: 4,
            floor_nodes: 64,
        });
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 1, 1));
        rm.submit(
            mk_job(0, 0, 0, 1000, &[10, 10, 10, 10, 10], &[5]),
            SimTime::ZERO,
        )
        .unwrap();
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 6);
    }

    fn strict_manager(cluster: Vec<Resource>) -> MrcpRm {
        let cfg = MrcpConfig {
            admission: AdmissionConfig {
                policy: AdmissionPolicy::Strict,
                max_pending_jobs: None,
            },
            ..Default::default()
        };
        MrcpRm::new(cfg, cluster)
    }

    #[test]
    fn best_effort_admission_is_plain_submit() {
        let mut rm = manager();
        let out = rm
            .submit_with_admission(mk_job(0, 0, 0, 100, &[10], &[5]), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.decision, AdmissionDecision::Admit);
        assert_eq!(out.submitted, Some(Submitted::Active));
        assert!(out.shed.is_empty());
        assert_eq!(rm.jobs_in_system(), 1);
        assert_eq!(rm.stats().jobs_rejected, 0);
    }

    #[test]
    fn strict_admission_accepts_feasible_and_rejects_witness_late() {
        let mut rm = strict_manager(homogeneous_cluster(1, 1, 1));
        // A 10 s job with a 100 s deadline is comfortably feasible.
        let out = rm
            .submit_with_admission(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.decision, AdmissionDecision::Admit);
        let plan = rm.reschedule(SimTime::ZERO);
        rm.task_started(plan[0].task, plan[0].start).unwrap();

        // The single map slot is pinned until t=10; a 10 s job due at 12
        // cannot finish before t=20.
        let out = rm
            .submit_with_admission(mk_job(1, 0, 0, 12, &[10], &[]), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            out.decision,
            AdmissionDecision::Reject {
                reason: RejectReason::WitnessLate,
                earliest_feasible_deadline: SimTime::from_secs(20),
            }
        );
        assert_eq!(out.submitted, None);
        assert_eq!(rm.jobs_in_system(), 1, "rejected job never entered");
        assert_eq!(rm.stats().jobs_rejected, 1);
    }

    #[test]
    fn strict_admission_rejects_on_demand_bound() {
        let mut rm = strict_manager(homogeneous_cluster(1, 1, 1));
        // 10 s of waiting work due at 15 s...
        rm.submit_with_admission(mk_job(0, 0, 0, 15, &[10], &[]), SimTime::ZERO)
            .unwrap();
        // ...plus 10 s more due at 14 s: cumulative 20 s by t=15 on one
        // slot — provably infeasible even though the candidate itself
        // would finish by t=10 in the witness.
        let out = rm
            .submit_with_admission(mk_job(1, 0, 0, 14, &[10], &[]), SimTime::ZERO)
            .unwrap();
        match out.decision {
            AdmissionDecision::Reject {
                reason: RejectReason::DemandExceedsCapacity,
                earliest_feasible_deadline,
            } => assert_eq!(earliest_feasible_deadline, SimTime::from_secs(20)),
            d => panic!("expected demand-bound rejection, got {d:?}"),
        }
    }

    #[test]
    fn strict_admission_rejects_when_cluster_is_down() {
        let mut rm = strict_manager(homogeneous_cluster(1, 1, 1));
        let rid = rm.resources()[0].id;
        rm.resource_down(rid, SimTime::ZERO).unwrap();
        let out = rm
            .submit_with_admission(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            out.decision,
            AdmissionDecision::Reject {
                reason: RejectReason::DemandExceedsCapacity,
                earliest_feasible_deadline: SimTime::MAX,
            }
        );
    }

    #[test]
    fn renegotiation_relaxes_deadline_and_judges_against_it() {
        let cfg = MrcpConfig {
            admission: AdmissionConfig {
                policy: AdmissionPolicy::Renegotiate,
                max_pending_jobs: None,
            },
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(1, 1, 1));
        rm.submit_with_admission(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO)
            .unwrap();
        let plan = rm.reschedule(SimTime::ZERO);
        rm.task_started(plan[0].task, plan[0].start).unwrap();

        let out = rm
            .submit_with_admission(mk_job(1, 0, 0, 12, &[10], &[]), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            out.decision,
            AdmissionDecision::AdmitDegraded {
                original_deadline: SimTime::from_secs(12),
                new_deadline: SimTime::from_secs(20),
            }
        );
        assert_eq!(rm.stats().jobs_renegotiated, 1);

        // Drive it to completion at t=20: late against the original SLA,
        // on time against the renegotiated one it was admitted under.
        rm.task_completed(plan[0].task, plan[0].end).unwrap();
        let plan = rm.reschedule(SimTime::from_secs(10));
        let e = plan[0];
        assert_eq!(e.job, JobId(1));
        rm.task_started(e.task, e.start).unwrap();
        let done = rm.task_completed(e.task, e.end).unwrap().unwrap();
        assert_eq!(done.completion, SimTime::from_secs(20));
        assert_eq!(done.deadline, SimTime::from_secs(20));
        assert!(!done.late);
    }

    #[test]
    fn queue_bound_sheds_farthest_deadline_first() {
        let cfg = MrcpConfig {
            admission: AdmissionConfig {
                policy: AdmissionPolicy::BestEffort,
                max_pending_jobs: Some(2),
            },
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 1, 1));
        rm.submit_with_admission(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO)
            .unwrap();
        rm.submit_with_admission(mk_job(1, 0, 0, 200, &[10], &[]), SimTime::ZERO)
            .unwrap();

        // The queue is full; an urgent arrival sheds the laxest job.
        let out = rm
            .submit_with_admission(mk_job(2, 0, 0, 50, &[10], &[]), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.decision, AdmissionDecision::Admit);
        assert_eq!(out.shed.len(), 1);
        assert_eq!(out.shed[0].job, JobId(1));
        assert_eq!(rm.jobs_in_system(), 2);
        assert_eq!(rm.stats().jobs_shed, 1);

        // A laxer-than-everyone arrival is itself the victim.
        let out = rm
            .submit_with_admission(mk_job(3, 0, 0, 1000, &[10], &[]), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            out.decision,
            AdmissionDecision::Reject {
                reason: RejectReason::QueueFull,
                earliest_feasible_deadline: SimTime::MAX,
            }
        );
        assert!(out.shed.is_empty());
        assert_eq!(rm.jobs_in_system(), 2);
        assert_eq!(rm.stats().jobs_rejected, 1);
        assert_eq!(rm.stats().max_queue_depth, 2);
    }

    #[test]
    fn queue_bound_never_sheds_started_jobs() {
        let cfg = MrcpConfig {
            admission: AdmissionConfig {
                policy: AdmissionPolicy::BestEffort,
                max_pending_jobs: Some(1),
            },
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(1, 1, 1));
        rm.submit_with_admission(mk_job(0, 0, 0, 1000, &[10], &[]), SimTime::ZERO)
            .unwrap();
        let plan = rm.reschedule(SimTime::ZERO);
        rm.task_started(plan[0].task, plan[0].start).unwrap();

        // j0 is running (not sheddable) even though its deadline is lax;
        // the arrival is refused instead.
        let out = rm
            .submit_with_admission(mk_job(1, 0, 0, 50, &[10], &[]), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            out.decision,
            AdmissionDecision::Reject {
                reason: RejectReason::QueueFull,
                ..
            }
        ));
        assert_eq!(rm.jobs_in_system(), 1);
    }

    #[test]
    fn submit_with_admission_rejects_duplicates_without_shedding() {
        let cfg = MrcpConfig {
            admission: AdmissionConfig {
                policy: AdmissionPolicy::BestEffort,
                max_pending_jobs: Some(1),
            },
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 1, 1));
        rm.submit_with_admission(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            rm.submit_with_admission(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO),
            Err(ManagerError::DuplicateJob(JobId(0)))
        );
        assert_eq!(rm.jobs_in_system(), 1, "duplicate must not shed work");
        assert_eq!(rm.stats().jobs_shed, 0);
    }

    #[test]
    fn budget_controller_shrinks_then_recovers() {
        // A ceiling of zero makes every round count as over budget.
        let cfg = MrcpConfig {
            controller: Some(BudgetController {
                latency_ceiling: Duration::ZERO,
                alpha: 1.0,
                min_scale: 0.25,
            }),
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 1, 1));
        rm.submit(mk_job(0, 0, 0, 1000, &[10, 10], &[5]), SimTime::ZERO)
            .unwrap();
        rm.reschedule(SimTime::ZERO);
        assert!(rm.budget_scale() < 1.0, "over-budget round shrinks scale");
        rm.reschedule(SimTime::from_secs(1));
        assert_eq!(rm.budget_scale(), 0.25, "clamped at min_scale");
        assert!(rm.stats().budget_adaptations >= 2);
        assert!(rm.stats().max_round_solve > Duration::ZERO);

        // An enormous ceiling lets the scale grow back to full.
        let mut relaxed = rm;
        relaxed.cfg.controller = Some(BudgetController {
            latency_ceiling: Duration::from_secs(3600),
            alpha: 1.0,
            min_scale: 0.25,
        });
        relaxed.reschedule(SimTime::from_secs(2));
        relaxed.reschedule(SimTime::from_secs(3));
        assert_eq!(relaxed.budget_scale(), 1.0, "scale doubles back to full");
    }

    #[test]
    fn max_pressure_goes_straight_to_greedy() {
        // min_scale = 1.0 keeps the scale at the floor from the start, so
        // every round runs at pressure level 3: greedy only, counted as
        // degraded, but still a complete schedule.
        let cfg = MrcpConfig {
            controller: Some(BudgetController {
                latency_ceiling: Duration::from_secs(3600),
                alpha: 0.3,
                min_scale: 1.0,
            }),
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 1, 1));
        for i in 0..3 {
            rm.submit(mk_job(i, 0, 0, 10_000, &[10, 20], &[5]), SimTime::ZERO)
                .unwrap();
        }
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 9, "greedy still schedules everything");
        assert_eq!(rm.stats().degraded_rounds, 1);
        assert_eq!(rm.stats().failed_rounds, 0);
    }

    #[test]
    fn pressure_two_serves_round_via_lns_rung() {
        // A scale strictly between min_scale and 0.25 puts the round at
        // pressure level 2: both CP rungs are skipped and the LNS repair
        // rung serves the round — a full schedule, counted in lns_rounds
        // and not as degraded (LNS is the primary rung at this level).
        let cfg = MrcpConfig {
            controller: Some(BudgetController {
                latency_ceiling: Duration::from_secs(3600),
                alpha: 0.3,
                min_scale: 0.1,
            }),
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 1, 1));
        rm.budget_scale = 0.2;
        for i in 0..3 {
            rm.submit(mk_job(i, 0, 0, 10_000, &[10, 20], &[5]), SimTime::ZERO)
                .unwrap();
        }
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 9, "LNS repair still schedules everything");
        assert_eq!(rm.stats().lns_rounds, 1, "round served by the LNS rung");
        assert_eq!(rm.stats().degraded_rounds, 0);
        assert_eq!(rm.stats().failed_rounds, 0);
    }

    #[test]
    fn every_error_variant_displays_through_std_error() {
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(ManagerError::DuplicateJob(JobId(1))),
            Box::new(ManagerError::DuplicateTask(TaskId(2))),
            Box::new(ManagerError::UnknownTask(TaskId(3))),
            Box::new(ManagerError::TaskNotScheduled(TaskId(4))),
            Box::new(ManagerError::TaskNotRunning(TaskId(5))),
            Box::new(ManagerError::UnknownResource(ResourceId(6))),
            Box::new(ManagerError::ResourceAlreadyDown(ResourceId(7))),
            Box::new(ManagerError::ResourceNotDown(ResourceId(8))),
            Box::new(ManagerError::ChartTooNarrow { width: 5, min: 20 }),
            Box::new(ManagerError::ScheduleOverCapacity(TaskId(9))),
            Box::new(ManagerError::Inconsistent("invariant breach")),
            Box::new(SchedulingError::ModelBuild("bad model".into())),
            Box::new(SchedulingError::NoSolution("no rung".into())),
            Box::new(SchedulingError::AuditFailed("overlap".into())),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut rm = manager();
        rm.submit(mk_job(0, 0, 0, 1000, &[10, 10, 10], &[5]), SimTime::ZERO)
            .unwrap();
        rm.reschedule(SimTime::ZERO);
        let s = rm.stats();
        assert_eq!(s.invocations, 1);
        assert_eq!(s.max_tasks_in_model, 4);
        assert_eq!(s.optimal_rounds + s.feasible_rounds, 1);
    }

    /// A restored manager is indistinguishable from the original: its
    /// image matches bit-for-bit, and it continues the run identically.
    #[test]
    fn image_restore_roundtrip_mid_run() {
        let mut rm = manager();
        rm.submit(mk_job(0, 0, 0, 200, &[10, 8], &[5]), SimTime::ZERO)
            .unwrap();
        rm.submit(mk_job(1, 0, 50, 400, &[6], &[]), SimTime::ZERO)
            .unwrap(); // deferred
        let plan = rm.reschedule(SimTime::ZERO);
        let first = plan[0];
        rm.task_started(first.task, first.start).unwrap();

        let image = rm.image();
        let mut restored =
            MrcpRm::restore(*rm.config(), rm.resources().to_vec(), image.clone()).unwrap();
        assert_eq!(restored.image(), image, "image survives a roundtrip");
        assert_eq!(restored.jobs_in_system(), rm.jobs_in_system());
        assert_eq!(restored.next_activation(), rm.next_activation());
        assert_eq!(restored.current_schedule(), rm.current_schedule());

        // Both managers continue the run in lockstep. Wall-clock stats
        // (solve durations) are re-measured by the live solves and differ
        // between the two; everything else must stay identical.
        let t = SimTime::from_secs(60);
        assert_eq!(restored.activate_due(t), rm.activate_due(t));
        assert_eq!(restored.reschedule(t), rm.reschedule(t));
        let mut a = restored.image();
        let mut b = rm.image();
        a.stats.total_solve = Duration::ZERO;
        a.stats.max_round_solve = Duration::ZERO;
        b.stats.total_solve = Duration::ZERO;
        b.stats.max_round_solve = Duration::ZERO;
        assert_eq!(a, b);
    }

    #[test]
    fn restore_rejects_inconsistent_images() {
        let mut rm = manager();
        rm.submit(mk_job(0, 0, 0, 200, &[10], &[]), SimTime::ZERO)
            .unwrap();
        rm.reschedule(SimTime::ZERO);
        let image = rm.image();

        let mut twice = image.clone();
        twice.jobs.push(twice.jobs[0].clone());
        assert!(matches!(
            MrcpRm::restore(*rm.config(), rm.resources().to_vec(), twice),
            Err(ManagerError::Inconsistent(_))
        ));

        let mut bad_down = image.clone();
        bad_down.down.push(ResourceId(999));
        assert!(matches!(
            MrcpRm::restore(*rm.config(), rm.resources().to_vec(), bad_down),
            Err(ManagerError::Inconsistent(_))
        ));

        let mut bad_sched = image;
        bad_sched.schedule.push(ScheduleEntry {
            task: TaskId(777),
            job: JobId(0),
            resource: ResourceId(0),
            start: SimTime::ZERO,
            end: SimTime::from_secs(1),
        });
        assert!(matches!(
            MrcpRm::restore(*rm.config(), rm.resources().to_vec(), bad_sched),
            Err(ManagerError::Inconsistent(_))
        ));
    }
}
