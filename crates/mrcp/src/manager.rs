//! The MRCP-RM resource manager (paper Fig. 1 and the Table 2 algorithm).
//!
//! Users submit MapReduce jobs; the manager maps and schedules all
//! outstanding work by building and solving a CP model on every
//! (re)scheduling round:
//!
//! * jobs whose earliest start time has passed get `release = now`
//!   (Table 2 lines 1–4),
//! * tasks that have started but not completed are **pinned** to their
//!   resource and start time (lines 5–12) — the solver may not move them,
//! * completed tasks leave the model, finished jobs leave the system
//!   (lines 13–16),
//! * everything else — including previously scheduled but unstarted
//!   tasks — is remapped and rescheduled from scratch, "to provide the
//!   most flexibility … for example, a new job with an earlier deadline
//!   may need to be mapped and scheduled in the place of a previously
//!   scheduled job" (lines 19–24).
//!
//! Instead of scanning per-resource task lists as the paper's Java
//! implementation does, the manager receives explicit `task_started` /
//! `task_completed` notifications from its host (the simulator or a real
//! execution layer) — equivalent bookkeeping with the same outcome.
//!
//! The §V.D split optimization and §V.E deferral are both on by default,
//! as in the paper's evaluated configuration, and can be disabled for
//! ablations.

use crate::defer::DeferPolicy;
use crate::modelmap::{build_model, JobInput, TaskInput};
use crate::ordering::JobOrdering;
use crate::split::split_solve;
use cpsolve::search::{solve, SolveParams, Status};
use desim::SimTime;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use workload::{Job, JobId, Resource, ResourceId, TaskId, TaskKind};

/// Adaptive effort scaling — the paper's §VII future-work item
/// "mechanisms that can reduce matchmaking and scheduling times when λ is
/// high". When the model grows beyond `reference_tasks`, the per-round
/// node/fail limits shrink proportionally (never below `floor_nodes`), so
/// the *total* scheduling effort per unit time stays roughly constant as
/// load rises instead of multiplying with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBudget {
    /// Model size (task count) at which the base budget applies unscaled.
    pub reference_tasks: usize,
    /// Lower bound on the scaled node/fail limits.
    pub floor_nodes: u64,
}

/// Per-invocation solver effort limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveBudget {
    /// Maximum branching decisions per invocation.
    pub node_limit: u64,
    /// Maximum conflicts per invocation.
    pub fail_limit: u64,
    /// Wall-clock ceiling per invocation, milliseconds (None = unlimited).
    pub time_limit_ms: Option<u64>,
    /// Optional adaptive scaling with model size.
    pub adaptive: Option<AdaptiveBudget>,
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget {
            node_limit: 20_000,
            fail_limit: 20_000,
            time_limit_ms: Some(200),
            adaptive: None,
        }
    }
}

impl SolveBudget {
    /// Effective solver parameters for a model with `n_tasks` tasks.
    pub fn params_for(&self, n_tasks: usize) -> SolveParams {
        let (nodes, fails) = match self.adaptive {
            Some(a) if n_tasks > a.reference_tasks => {
                let scale = a.reference_tasks as f64 / n_tasks as f64;
                let nodes =
                    ((self.node_limit as f64 * scale) as u64).max(a.floor_nodes);
                let fails =
                    ((self.fail_limit as f64 * scale) as u64).max(a.floor_nodes);
                (nodes, fails)
            }
            _ => (self.node_limit, self.fail_limit),
        };
        SolveParams {
            node_limit: nodes,
            fail_limit: fails,
            time_limit: self.time_limit_ms.map(Duration::from_millis),
            ..Default::default()
        }
    }
}

/// MRCP-RM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrcpConfig {
    /// Job ordering strategy (paper §VI.B; EDF is the reported default).
    pub ordering: JobOrdering,
    /// Per-invocation solver budget.
    pub budget: SolveBudget,
    /// §V.D: schedule on one combined resource, then matchmake (default on).
    pub use_split: bool,
    /// §V.E: defer jobs whose `s_j` lies in the future (default on).
    pub defer: DeferPolicy,
    /// Audit every installed schedule with the independent verifier
    /// (always on in debug builds).
    pub verify_schedules: bool,
}

impl Default for MrcpConfig {
    fn default() -> Self {
        MrcpConfig {
            ordering: JobOrdering::Edf,
            budget: SolveBudget::default(),
            use_split: true,
            defer: DeferPolicy::default(),
            verify_schedules: cfg!(debug_assertions),
        }
    }
}

/// One planned (not yet started) task execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// The task.
    pub task: TaskId,
    /// Its job.
    pub job: JobId,
    /// Assigned resource.
    pub resource: ResourceId,
    /// Assigned start time.
    pub start: SimTime,
    /// Completion time (`start + e_t`).
    pub end: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskStatus {
    Waiting,
    Started { resource: ResourceId, start: SimTime },
    Completed,
}

#[derive(Debug, Clone)]
struct TaskState {
    id: TaskId,
    kind: TaskKind,
    exec_time: SimTime,
    req: u32,
    status: TaskStatus,
}

#[derive(Debug)]
struct JobState {
    job: Job,
    tasks: Vec<TaskState>,
    remaining: usize,
}

/// Aggregate manager statistics (drives the paper's `O` metric).
#[derive(Debug, Clone, Copy, Default)]
pub struct ManagerStats {
    /// Scheduling rounds executed.
    pub invocations: u64,
    /// Total wall-clock time spent building + solving models.
    pub total_solve: Duration,
    /// Total solver branching decisions.
    pub total_nodes: u64,
    /// Rounds in which the solver proved optimality.
    pub optimal_rounds: u64,
    /// Rounds stopped by budget with an incumbent.
    pub feasible_rounds: u64,
    /// Largest single-round task count.
    pub max_tasks_in_model: usize,
}

/// Completion record returned when a job's last task finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCompletion {
    /// The job.
    pub job: JobId,
    /// When its last task finished.
    pub completion: SimTime,
    /// Its SLA deadline.
    pub deadline: SimTime,
    /// Its earliest start time `s_j` (the paper measures turnaround from
    /// here).
    pub earliest_start: SimTime,
    /// Whether the deadline was missed.
    pub late: bool,
}

/// Outcome of [`MrcpRm::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// The job entered the scheduling set; call
    /// [`reschedule`](MrcpRm::reschedule).
    Active,
    /// §V.E deferral: the job is parked until the given activation time.
    Deferred(SimTime),
}

/// The MRCP-RM resource manager.
///
/// ```
/// use desim::SimTime;
/// use mrcp::{MrcpConfig, MrcpRm};
/// use workload::model::homogeneous_cluster;
/// use workload::{Job, JobId, Task, TaskId, TaskKind};
///
/// let job = Job {
///     id: JobId(0),
///     arrival: SimTime::ZERO,
///     earliest_start: SimTime::ZERO,
///     deadline: SimTime::from_secs(60),
///     map_tasks: vec![Task {
///         id: TaskId(0), job: JobId(0), kind: TaskKind::Map,
///         exec_time: SimTime::from_secs(10), req: 1,
///     }],
///     reduce_tasks: vec![],
///     precedences: vec![],
/// };
///
/// let mut rm = MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(2, 1, 1));
/// rm.submit(job, SimTime::ZERO);
/// let plan = rm.reschedule(SimTime::ZERO);   // Table 2 algorithm
/// assert_eq!(plan.len(), 1);
/// assert_eq!(plan[0].start, SimTime::ZERO);
///
/// // Drive execution like the simulator would:
/// rm.task_started(plan[0].task, plan[0].start);
/// let done = rm.task_completed(plan[0].task, plan[0].end).unwrap();
/// assert!(!done.late);
/// ```
#[derive(Debug)]
pub struct MrcpRm {
    cfg: MrcpConfig,
    resources: Vec<Resource>,
    jobs: HashMap<JobId, JobState>,
    /// Jobs parked by the deferral policy: `(activation, job)`.
    deferred: Vec<(SimTime, JobId)>,
    /// Task → owning job, for event routing.
    task_owner: HashMap<TaskId, JobId>,
    /// Current plan for unstarted tasks.
    schedule: HashMap<TaskId, ScheduleEntry>,
    stats: ManagerStats,
}

impl MrcpRm {
    /// A manager over `resources`.
    pub fn new(cfg: MrcpConfig, resources: Vec<Resource>) -> Self {
        assert!(!resources.is_empty(), "manager needs at least one resource");
        MrcpRm {
            cfg,
            resources,
            jobs: HashMap::new(),
            deferred: Vec::new(),
            task_owner: HashMap::new(),
            schedule: HashMap::new(),
            stats: ManagerStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MrcpConfig {
        &self.cfg
    }

    /// The cluster.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Number of jobs currently in the system (active + deferred).
    pub fn jobs_in_system(&self) -> usize {
        self.jobs.len()
    }

    /// Submit an arriving job. Returns whether it joined the scheduling set
    /// or was deferred (§V.E); in the former case the caller should invoke
    /// [`reschedule`](Self::reschedule).
    pub fn submit(&mut self, job: Job, now: SimTime) -> Submitted {
        debug_assert!(job.validate().is_ok(), "invalid job submitted");
        let id = job.id;
        assert!(
            !self.jobs.contains_key(&id),
            "job {id} submitted twice"
        );
        let tasks: Vec<TaskState> = job
            .tasks()
            .map(|t| TaskState {
                id: t.id,
                kind: t.kind,
                exec_time: t.exec_time,
                req: t.req,
                status: TaskStatus::Waiting,
            })
            .collect();
        for t in &tasks {
            let prev = self.task_owner.insert(t.id, id);
            assert!(prev.is_none(), "task {:?} already known", t.id);
        }
        let remaining = tasks.len();
        let deferral = self.cfg.defer.activation(now, job.earliest_start);
        self.jobs.insert(
            id,
            JobState {
                job,
                tasks,
                remaining,
            },
        );
        match deferral {
            Some(act) => {
                self.deferred.push((act, id));
                Submitted::Deferred(act)
            }
            None => Submitted::Active,
        }
    }

    /// Admit deferred jobs whose activation time has arrived. Returns how
    /// many became active (if > 0 the caller should reschedule).
    pub fn activate_due(&mut self, now: SimTime) -> usize {
        let before = self.deferred.len();
        self.deferred.retain(|&(act, _)| act > now);
        before - self.deferred.len()
    }

    /// Earliest pending activation, if any.
    pub fn next_activation(&self) -> Option<SimTime> {
        self.deferred.iter().map(|&(act, _)| act).min()
    }

    /// The host reports that a task began executing at `now` per the
    /// current schedule.
    pub fn task_started(&mut self, task: TaskId, now: SimTime) {
        let entry = self
            .schedule
            .remove(&task)
            .unwrap_or_else(|| panic!("task {task} started without a schedule entry"));
        debug_assert_eq!(entry.start, now, "start time drifted from plan");
        let job = self.task_owner[&task];
        let state = self.jobs.get_mut(&job).expect("owner exists");
        let t = state
            .tasks
            .iter_mut()
            .find(|t| t.id == task)
            .expect("task in owner");
        debug_assert_eq!(t.status, TaskStatus::Waiting);
        t.status = TaskStatus::Started {
            resource: entry.resource,
            start: now,
        };
    }

    /// The host reports task completion. Returns the job's completion
    /// record when this was its last task (the job then leaves the system,
    /// Table 2 lines 13–16).
    pub fn task_completed(&mut self, task: TaskId, now: SimTime) -> Option<JobCompletion> {
        let job = *self
            .task_owner
            .get(&task)
            .unwrap_or_else(|| panic!("unknown task {task} completed"));
        let state = self.jobs.get_mut(&job).expect("owner exists");
        let t = state
            .tasks
            .iter_mut()
            .find(|t| t.id == task)
            .expect("task in owner");
        match t.status {
            TaskStatus::Started { start, .. } => {
                debug_assert_eq!(start + t.exec_time, now, "completion time drifted");
            }
            s => panic!("task {task} completed from state {s:?}"),
        }
        t.status = TaskStatus::Completed;
        state.remaining -= 1;
        if state.remaining == 0 {
            let state = self.jobs.remove(&job).expect("present");
            for t in &state.tasks {
                self.task_owner.remove(&t.id);
            }
            Some(JobCompletion {
                job,
                completion: now,
                deadline: state.job.deadline,
                earliest_start: state.job.earliest_start,
                late: now > state.job.deadline,
            })
        } else {
            None
        }
    }

    /// Run one scheduling round (Table 2). Remaps and reschedules every
    /// active, unstarted task; pins running tasks. Returns the new plan for
    /// unstarted tasks (the host should arm start events from it).
    pub fn reschedule(&mut self, now: SimTime) -> Vec<ScheduleEntry> {
        let t0 = Instant::now();
        let deferred_ids: std::collections::HashSet<JobId> =
            self.deferred.iter().map(|&(_, j)| j).collect();

        // Assemble model inputs: active jobs with outstanding tasks.
        let mut inputs: Vec<JobInput<'_>> = Vec::new();
        let mut ids: Vec<JobId> = self.jobs.keys().copied().collect();
        ids.sort_unstable(); // deterministic model construction
        for id in ids {
            if deferred_ids.contains(&id) {
                continue;
            }
            let state = &self.jobs[&id];
            if state.remaining == 0 {
                continue;
            }
            let tasks: Vec<TaskInput> = state
                .tasks
                .iter()
                .filter_map(|t| match t.status {
                    TaskStatus::Completed => None,
                    TaskStatus::Waiting => Some(TaskInput {
                        id: t.id,
                        kind: t.kind,
                        exec_time: t.exec_time,
                        req: t.req,
                        pinned: None,
                    }),
                    TaskStatus::Started { resource, start } => Some(TaskInput {
                        id: t.id,
                        kind: t.kind,
                        exec_time: t.exec_time,
                        req: t.req,
                        pinned: Some((resource, start)),
                    }),
                })
                .collect();
            if tasks.is_empty() {
                continue;
            }
            // Table 2 lines 1–4: releases never lie in the past.
            let release = state.job.earliest_start.max(now);
            inputs.push(JobInput {
                priority: self.cfg.ordering.priority(&state.job),
                job: &state.job,
                release,
                tasks,
            });
        }

        if inputs.is_empty() {
            self.schedule.clear();
            return Vec::new();
        }

        let n_tasks: usize = inputs.iter().map(|j| j.tasks.len()).sum();
        let params = self.cfg.budget.params_for(n_tasks);

        // Solve: §V.D split path or the monolithic model.
        let (placements, outcome) = if self.cfg.use_split {
            let s = split_solve(&self.resources, &inputs, &params)
                .expect("split solve produced no schedule");
            (s.placements, s.outcome)
        } else {
            let mm = build_model(&self.resources, &inputs).expect("model builds");
            let out = solve(&mm.model, &params);
            let best = out
                .best
                .as_ref()
                .expect("full solve produced no schedule");
            let placements = mm
                .task_ids
                .iter()
                .enumerate()
                .map(|(i, &tid)| {
                    (
                        tid,
                        mm.res_ids[best.resource[i].idx()],
                        SimTime::from_millis(best.starts[i]),
                    )
                })
                .collect();
            (placements, out)
        };

        if self.cfg.verify_schedules {
            crate::split::audit(&self.resources, &inputs, &placements)
                .expect("installed schedule failed verification");
        }

        // Install: entries for unstarted tasks only.
        drop(inputs);
        self.schedule.clear();
        for (tid, rid, start) in placements {
            let job = self.task_owner[&tid];
            let state = &self.jobs[&job];
            let t = state.tasks.iter().find(|t| t.id == tid).expect("task");
            if t.status == TaskStatus::Waiting {
                debug_assert!(start >= now, "new start {start} in the past (now {now})");
                self.schedule.insert(
                    tid,
                    ScheduleEntry {
                        task: tid,
                        job,
                        resource: rid,
                        start,
                        end: start + t.exec_time,
                    },
                );
            }
        }

        self.stats.invocations += 1;
        self.stats.total_solve += t0.elapsed();
        self.stats.total_nodes += outcome.stats.nodes;
        self.stats.max_tasks_in_model = self.stats.max_tasks_in_model.max(n_tasks);
        match outcome.status {
            Status::Optimal => self.stats.optimal_rounds += 1,
            Status::Feasible => self.stats.feasible_rounds += 1,
            s => panic!("scheduling round ended {s:?} — warm start should prevent this"),
        }

        let mut entries: Vec<ScheduleEntry> = self.schedule.values().copied().collect();
        entries.sort_by_key(|e| (e.start, e.task));
        entries
    }

    /// The current plan for unstarted tasks, sorted by start time.
    pub fn current_schedule(&self) -> Vec<ScheduleEntry> {
        let mut entries: Vec<ScheduleEntry> = self.schedule.values().copied().collect();
        entries.sort_by_key(|e| (e.start, e.task));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::model::homogeneous_cluster;
    use workload::Task;

    fn mk_job(id: u32, arrival: i64, s: i64, d: i64, maps: &[i64], reduces: &[i64]) -> Job {
        let mut next = id * 1000;
        let mut task = |kind, secs: i64| {
            let t = Task {
                id: TaskId(next),
                job: JobId(id),
                kind,
                exec_time: SimTime::from_secs(secs),
                req: 1,
            };
            next += 1;
            t
        };
        Job {
            id: JobId(id),
            arrival: SimTime::from_secs(arrival),
            earliest_start: SimTime::from_secs(s),
            deadline: SimTime::from_secs(d),
            map_tasks: maps.iter().map(|&e| task(TaskKind::Map, e)).collect(),
            reduce_tasks: reduces.iter().map(|&e| task(TaskKind::Reduce, e)).collect(),
            precedences: vec![],
        }
    }

    fn manager() -> MrcpRm {
        MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(2, 1, 1))
    }

    #[test]
    fn single_job_lifecycle() {
        let mut rm = manager();
        let job = mk_job(0, 0, 0, 100, &[10], &[5]);
        assert_eq!(rm.submit(job, SimTime::ZERO), Submitted::Active);
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 2);
        let map = plan.iter().find(|e| e.task == TaskId(0)).unwrap();
        let red = plan.iter().find(|e| e.task == TaskId(1)).unwrap();
        assert_eq!(map.start, SimTime::ZERO);
        assert!(red.start >= map.end, "barrier respected");

        rm.task_started(map.task, map.start);
        assert_eq!(rm.task_completed(map.task, map.end), None);
        rm.task_started(red.task, red.start);
        let done = rm.task_completed(red.task, red.end).unwrap();
        assert!(!done.late);
        assert_eq!(done.job, JobId(0));
        assert_eq!(rm.jobs_in_system(), 0);
        assert_eq!(rm.stats().invocations, 1);
    }

    #[test]
    fn deferral_parks_future_jobs() {
        let mut rm = manager();
        let job = mk_job(0, 0, 500, 1000, &[10], &[]);
        match rm.submit(job, SimTime::ZERO) {
            Submitted::Deferred(act) => assert_eq!(act, SimTime::from_secs(500)),
            s => panic!("expected deferral, got {s:?}"),
        }
        // A reschedule round excludes the deferred job entirely.
        let plan = rm.reschedule(SimTime::ZERO);
        assert!(plan.is_empty());
        assert_eq!(rm.next_activation(), Some(SimTime::from_secs(500)));
        assert_eq!(rm.activate_due(SimTime::from_secs(499)), 0);
        assert_eq!(rm.activate_due(SimTime::from_secs(500)), 1);
        let plan = rm.reschedule(SimTime::from_secs(500));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].start, SimTime::from_secs(500));
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn defer_disabled_schedules_immediately() {
        let mut cfg = MrcpConfig::default();
        cfg.defer = DeferPolicy::disabled();
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 1, 1));
        let job = mk_job(0, 0, 500, 1000, &[10], &[]);
        assert_eq!(rm.submit(job, SimTime::ZERO), Submitted::Active);
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 1);
        // Still respects s_j even though scheduled early.
        assert_eq!(plan[0].start, SimTime::from_secs(500));
    }

    #[test]
    fn rescheduling_pins_started_tasks() {
        let mut rm = manager();
        let j0 = mk_job(0, 0, 0, 100, &[20], &[]);
        rm.submit(j0, SimTime::ZERO);
        let plan = rm.reschedule(SimTime::ZERO);
        let e0 = plan[0];
        rm.task_started(e0.task, e0.start);

        // A second, urgent job arrives mid-flight.
        let j1 = mk_job(1, 5, 5, 30, &[10], &[]);
        rm.submit(j1, SimTime::from_secs(5));
        let plan = rm.reschedule(SimTime::from_secs(5));
        // Only the new job's task is in the plan; the running task is pinned.
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].job, JobId(1));
        // It does not share r0's busy map slot before t=20 — either it's on
        // the other resource at 5 or behind the pin.
        if plan[0].resource == e0.resource {
            assert!(plan[0].start >= e0.end);
        } else {
            assert_eq!(plan[0].start, SimTime::from_secs(5));
        }
    }

    #[test]
    fn new_urgent_job_preempts_planned_slot() {
        // One 1/1 resource. Job A planned but not started; urgent job B
        // arrives and must take the slot first (the paper's motivating
        // example for remapping unstarted tasks).
        let mut rm = MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(1, 1, 1));
        let a = mk_job(0, 0, 0, 200, &[10], &[]);
        rm.submit(a, SimTime::ZERO);
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan[0].start, SimTime::ZERO);

        let b = mk_job(1, 0, 0, 12, &[10], &[]);
        rm.submit(b, SimTime::ZERO);
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 2);
        let ea = plan.iter().find(|e| e.job == JobId(0)).unwrap();
        let eb = plan.iter().find(|e| e.job == JobId(1)).unwrap();
        assert_eq!(eb.start, SimTime::ZERO, "urgent job moved to the front");
        assert!(ea.start >= eb.end);
    }

    #[test]
    fn full_model_path_matches_split_feasibility() {
        let cfg = MrcpConfig {
            use_split: false,
            ..Default::default()
        };
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 2, 2));
        for i in 0..3 {
            rm.submit(mk_job(i, 0, 0, 10_000, &[10, 20], &[5]), SimTime::ZERO);
        }
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 9);
        assert_eq!(rm.stats().invocations, 1);
    }

    #[test]
    #[should_panic(expected = "submitted twice")]
    fn duplicate_submission_panics() {
        let mut rm = manager();
        rm.submit(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO);
        rm.submit(mk_job(0, 0, 0, 100, &[10], &[]), SimTime::ZERO);
    }

    #[test]
    fn empty_reschedule_is_harmless() {
        let mut rm = manager();
        assert!(rm.reschedule(SimTime::ZERO).is_empty());
        assert_eq!(rm.stats().invocations, 0);
    }

    #[test]
    fn adaptive_budget_scales_with_model_size() {
        let base = SolveBudget {
            node_limit: 10_000,
            fail_limit: 10_000,
            time_limit_ms: None,
            adaptive: Some(AdaptiveBudget {
                reference_tasks: 100,
                floor_nodes: 500,
            }),
        };
        // At or below the reference size: unscaled.
        assert_eq!(base.params_for(50).node_limit, 10_000);
        assert_eq!(base.params_for(100).node_limit, 10_000);
        // Twice the reference: half the nodes.
        assert_eq!(base.params_for(200).node_limit, 5_000);
        // Enormous model: clamped to the floor.
        assert_eq!(base.params_for(10_000_000).node_limit, 500);
        // Without adaptive: constant.
        let fixed = SolveBudget::default();
        assert_eq!(
            fixed.params_for(10).node_limit,
            fixed.params_for(100_000).node_limit
        );
    }

    #[test]
    fn adaptive_budget_runs_end_to_end() {
        let mut cfg = MrcpConfig::default();
        cfg.budget.adaptive = Some(AdaptiveBudget {
            reference_tasks: 4,
            floor_nodes: 64,
        });
        let mut rm = MrcpRm::new(cfg, homogeneous_cluster(2, 1, 1));
        rm.submit(
            mk_job(0, 0, 0, 1000, &[10, 10, 10, 10, 10], &[5]),
            SimTime::ZERO,
        );
        let plan = rm.reschedule(SimTime::ZERO);
        assert_eq!(plan.len(), 6);
    }

    #[test]
    fn stats_accumulate() {
        let mut rm = manager();
        rm.submit(mk_job(0, 0, 0, 1000, &[10, 10, 10], &[5]), SimTime::ZERO);
        rm.reschedule(SimTime::ZERO);
        let s = rm.stats();
        assert_eq!(s.invocations, 1);
        assert_eq!(s.max_tasks_in_model, 4);
        assert_eq!(s.optimal_rounds + s.feasible_rounds, 1);
    }
}
