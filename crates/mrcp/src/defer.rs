//! The §V.E performance optimization: deferral of far-future jobs.
//!
//! "A mechanism was implemented to start matchmaking and scheduling jobs
//! only when their `s_j` have arrived, or are close to arriving. … Jobs that
//! have arrived and have a `s_j` in the future are placed in a queue, and
//! are mapped and scheduled at a later time." Keeping those jobs out of the
//! CP model shrinks the number of decision variables and constraints per
//! solver invocation, which is what drives the overhead reductions of
//! Figs. 5 and 6.

use desim::SimTime;

/// When to admit an arrived job into the scheduling set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeferPolicy {
    /// Master switch (off = every arrival is scheduled immediately, the
    /// behaviour the paper's §V.E ablation compares against).
    pub enabled: bool,
    /// How long before `s_j` the job should enter the model ("close to
    /// arriving"). Zero = exactly at `s_j`.
    pub lead: SimTime,
}

impl Default for DeferPolicy {
    fn default() -> Self {
        DeferPolicy {
            enabled: true,
            lead: SimTime::ZERO,
        }
    }
}

impl DeferPolicy {
    /// A policy that never defers.
    pub fn disabled() -> Self {
        DeferPolicy {
            enabled: false,
            lead: SimTime::ZERO,
        }
    }

    /// If the job should be parked, returns the activation instant
    /// (`s_j − lead`); `None` means schedule it now.
    pub fn activation(&self, now: SimTime, earliest_start: SimTime) -> Option<SimTime> {
        if !self.enabled {
            return None;
        }
        let act = earliest_start - self.lead;
        if act > now {
            Some(act)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_jobs_are_not_deferred() {
        let p = DeferPolicy::default();
        let now = SimTime::from_secs(100);
        assert_eq!(p.activation(now, now), None);
        assert_eq!(p.activation(now, SimTime::from_secs(50)), None);
    }

    #[test]
    fn future_jobs_are_parked_until_s_j() {
        let p = DeferPolicy::default();
        let now = SimTime::from_secs(100);
        assert_eq!(
            p.activation(now, SimTime::from_secs(500)),
            Some(SimTime::from_secs(500))
        );
    }

    #[test]
    fn lead_admits_early() {
        let p = DeferPolicy {
            enabled: true,
            lead: SimTime::from_secs(60),
        };
        let now = SimTime::from_secs(100);
        // s_j = 150, lead 60 → would activate at 90 ≤ now → schedule now.
        assert_eq!(p.activation(now, SimTime::from_secs(150)), None);
        // s_j = 500 → activate at 440.
        assert_eq!(
            p.activation(now, SimTime::from_secs(500)),
            Some(SimTime::from_secs(440))
        );
    }

    #[test]
    fn disabled_never_defers() {
        let p = DeferPolicy::disabled();
        assert_eq!(
            p.activation(SimTime::ZERO, SimTime::from_secs(1_000_000)),
            None
        );
    }

    mod manager_integration {
        //! Deferral as the manager drives it: re-activation ordering and
        //! the interplay with retry budgets and load shedding.
        use crate::admission::{AdmissionConfig, AdmissionPolicy};
        use crate::manager::{FailureAction, MrcpConfig, MrcpRm, Submitted};
        use desim::SimTime;
        use workload::model::homogeneous_cluster;
        use workload::{Job, JobId, Task, TaskId, TaskKind};

        fn mk_job(id: u32, s: i64, d: i64, map_secs: i64) -> Job {
            Job {
                id: JobId(id),
                arrival: SimTime::ZERO,
                earliest_start: SimTime::from_secs(s),
                deadline: SimTime::from_secs(d),
                map_tasks: vec![Task {
                    id: TaskId(id * 100),
                    job: JobId(id),
                    kind: TaskKind::Map,
                    exec_time: SimTime::from_secs(map_secs),
                    req: 1,
                }],
                reduce_tasks: vec![],
                precedences: vec![],
            }
        }

        #[test]
        fn reactivation_follows_earliest_start_order() {
            let mut rm = MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(2, 1, 1));
            // Submitted out of s_j order; activations must come back in
            // s_j order regardless.
            for (id, s) in [(0u32, 300i64), (1, 100), (2, 200)] {
                match rm.submit(mk_job(id, s, 10_000, 10), SimTime::ZERO).unwrap() {
                    Submitted::Deferred(act) => assert_eq!(act, SimTime::from_secs(s)),
                    other => panic!("expected deferral, got {other:?}"),
                }
            }
            assert_eq!(rm.next_activation(), Some(SimTime::from_secs(100)));
            assert_eq!(rm.activate_due(SimTime::from_secs(100)), 1);
            assert_eq!(rm.next_activation(), Some(SimTime::from_secs(200)));
            assert_eq!(rm.activate_due(SimTime::from_secs(200)), 1);
            assert_eq!(rm.next_activation(), Some(SimTime::from_secs(300)));
            // A quiet stretch activates nothing.
            assert_eq!(rm.activate_due(SimTime::from_secs(250)), 0);
            assert_eq!(rm.activate_due(SimTime::from_secs(400)), 1);
            assert_eq!(rm.next_activation(), None);
            // All three are live and schedulable now.
            assert_eq!(rm.reschedule(SimTime::from_secs(400)).len(), 3);
        }

        #[test]
        fn reactivated_job_failure_requeues_without_redeferral() {
            let cfg = MrcpConfig {
                retry_budget: 1,
                ..Default::default()
            };
            let mut rm = MrcpRm::new(cfg, homogeneous_cluster(1, 1, 1));
            rm.submit(mk_job(0, 5, 10_000, 10), SimTime::ZERO).unwrap();
            assert_eq!(rm.activate_due(SimTime::from_secs(5)), 1);
            let plan = rm.reschedule(SimTime::from_secs(5));
            rm.task_started(plan[0].task, plan[0].start).unwrap();

            // The attempt fails within the retry budget: the job goes
            // back to the waiting queue, not the deferred queue — its
            // s_j has passed.
            let act = rm.task_failed(plan[0].task, SimTime::from_secs(8)).unwrap();
            assert_eq!(act, FailureAction::Requeued { failed_attempts: 1 });
            assert_eq!(rm.next_activation(), None, "no re-deferral");
            let plan = rm.reschedule(SimTime::from_secs(8));
            assert_eq!(plan.len(), 1);
            assert!(plan[0].start >= SimTime::from_secs(8));
        }

        #[test]
        fn retry_exhaustion_abandons_previously_deferred_job() {
            let cfg = MrcpConfig {
                retry_budget: 0,
                ..Default::default()
            };
            let mut rm = MrcpRm::new(cfg, homogeneous_cluster(1, 1, 1));
            rm.submit(mk_job(0, 5, 10_000, 10), SimTime::ZERO).unwrap();
            rm.activate_due(SimTime::from_secs(5));
            let plan = rm.reschedule(SimTime::from_secs(5));
            rm.task_started(plan[0].task, plan[0].start).unwrap();
            match rm.task_failed(plan[0].task, SimTime::from_secs(6)).unwrap() {
                FailureAction::JobAbandoned(ab) => assert_eq!(ab.job, JobId(0)),
                other => panic!("expected abandonment, got {other:?}"),
            }
            assert_eq!(rm.jobs_in_system(), 0);
            assert_eq!(rm.next_activation(), None, "no stale activation");
        }

        #[test]
        fn shedding_a_deferred_job_clears_its_activation() {
            let cfg = MrcpConfig {
                admission: AdmissionConfig {
                    policy: AdmissionPolicy::BestEffort,
                    max_pending_jobs: Some(1),
                },
                ..Default::default()
            };
            let mut rm = MrcpRm::new(cfg, homogeneous_cluster(1, 1, 1));
            // A lax, far-future job parks in the deferred queue.
            rm.submit_with_admission(mk_job(0, 500, 10_000, 10), SimTime::ZERO)
                .unwrap();
            assert_eq!(rm.next_activation(), Some(SimTime::from_secs(500)));
            // An urgent arrival sheds it; its activation must go with it.
            let out = rm
                .submit_with_admission(mk_job(1, 0, 100, 10), SimTime::ZERO)
                .unwrap();
            assert_eq!(out.shed.len(), 1);
            assert_eq!(out.shed[0].job, JobId(0));
            assert_eq!(rm.next_activation(), None, "stale activation cleared");
            assert_eq!(rm.jobs_in_system(), 1);
        }
    }
}
