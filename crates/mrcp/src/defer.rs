//! The §V.E performance optimization: deferral of far-future jobs.
//!
//! "A mechanism was implemented to start matchmaking and scheduling jobs
//! only when their `s_j` have arrived, or are close to arriving. … Jobs that
//! have arrived and have a `s_j` in the future are placed in a queue, and
//! are mapped and scheduled at a later time." Keeping those jobs out of the
//! CP model shrinks the number of decision variables and constraints per
//! solver invocation, which is what drives the overhead reductions of
//! Figs. 5 and 6.

use desim::SimTime;

/// When to admit an arrived job into the scheduling set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeferPolicy {
    /// Master switch (off = every arrival is scheduled immediately, the
    /// behaviour the paper's §V.E ablation compares against).
    pub enabled: bool,
    /// How long before `s_j` the job should enter the model ("close to
    /// arriving"). Zero = exactly at `s_j`.
    pub lead: SimTime,
}

impl Default for DeferPolicy {
    fn default() -> Self {
        DeferPolicy {
            enabled: true,
            lead: SimTime::ZERO,
        }
    }
}

impl DeferPolicy {
    /// A policy that never defers.
    pub fn disabled() -> Self {
        DeferPolicy {
            enabled: false,
            lead: SimTime::ZERO,
        }
    }

    /// If the job should be parked, returns the activation instant
    /// (`s_j − lead`); `None` means schedule it now.
    pub fn activation(&self, now: SimTime, earliest_start: SimTime) -> Option<SimTime> {
        if !self.enabled {
            return None;
        }
        let act = earliest_start - self.lead;
        if act > now {
            Some(act)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_jobs_are_not_deferred() {
        let p = DeferPolicy::default();
        let now = SimTime::from_secs(100);
        assert_eq!(p.activation(now, now), None);
        assert_eq!(p.activation(now, SimTime::from_secs(50)), None);
    }

    #[test]
    fn future_jobs_are_parked_until_s_j() {
        let p = DeferPolicy::default();
        let now = SimTime::from_secs(100);
        assert_eq!(
            p.activation(now, SimTime::from_secs(500)),
            Some(SimTime::from_secs(500))
        );
    }

    #[test]
    fn lead_admits_early() {
        let p = DeferPolicy {
            enabled: true,
            lead: SimTime::from_secs(60),
        };
        let now = SimTime::from_secs(100);
        // s_j = 150, lead 60 → would activate at 90 ≤ now → schedule now.
        assert_eq!(p.activation(now, SimTime::from_secs(150)), None);
        // s_j = 500 → activate at 440.
        assert_eq!(
            p.activation(now, SimTime::from_secs(500)),
            Some(SimTime::from_secs(440))
        );
    }

    #[test]
    fn disabled_never_defers() {
        let p = DeferPolicy::disabled();
        assert_eq!(
            p.activation(SimTime::ZERO, SimTime::from_secs(1_000_000)),
            None
        );
    }
}
