//! Translation of live system state into a [`cpsolve`] model.
//!
//! Plays the role of the paper's OPL model generation (§IV.A, §V.C): the
//! manager's view of the world — outstanding jobs, their unstarted tasks,
//! and the started-but-unfinished tasks that must be pinned — becomes the
//! tuple sets of the CP formulation, with dense solver indices mapped back
//! to workload identifiers afterwards.

use cpsolve::model::{Model, ModelBuilder, ResRef, SlotKind};
use desim::SimTime;
use workload::{Job, JobId, Resource, ResourceId, TaskId, TaskKind};

/// One job to include in the model.
#[derive(Debug, Clone)]
pub struct JobInput<'a> {
    /// The job (for its identity and deadline).
    pub job: &'a Job,
    /// Effective earliest start: `max(s_j, now)` per Table 2 lines 1–3.
    pub release: SimTime,
    /// Search priority from the configured [`JobOrdering`]
    /// (lower = placed first).
    ///
    /// [`JobOrdering`]: crate::ordering::JobOrdering
    pub priority: i64,
    /// The job's not-yet-completed tasks.
    pub tasks: Vec<TaskInput>,
}

/// One task to include in the model.
#[derive(Debug, Clone, Copy)]
pub struct TaskInput {
    /// Workload identity.
    pub id: TaskId,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Execution time.
    pub exec_time: SimTime,
    /// Capacity requirement (1 in the paper).
    pub req: u32,
    /// `Some((resource, start))` when the task has started but not
    /// completed executing — the paper's `isPrevScheduled` pinning
    /// constraint (Table 2 line 11).
    pub pinned: Option<(ResourceId, SimTime)>,
}

/// A compiled model plus the mappings back to workload identifiers.
#[derive(Debug)]
pub struct MappedModel {
    /// The CP model.
    pub model: Model,
    /// Workload task id for each solver task index.
    pub task_ids: Vec<TaskId>,
    /// Workload job id for each solver job index.
    pub job_ids: Vec<JobId>,
    /// Workload resource id for each solver resource index
    /// (for the combined model this is a single synthetic entry).
    pub res_ids: Vec<ResourceId>,
}

fn kind_to_slot(kind: TaskKind) -> SlotKind {
    match kind {
        TaskKind::Map => SlotKind::Map,
        TaskKind::Reduce => SlotKind::Reduce,
    }
}

fn add_jobs(
    b: &mut ModelBuilder,
    jobs: &[JobInput<'_>],
    res_index: impl Fn(ResourceId) -> Option<ResRef>,
) -> Result<(Vec<TaskId>, Vec<JobId>), String> {
    let mut task_ids = Vec::new();
    let mut job_ids = Vec::new();
    let mut task_index: std::collections::HashMap<TaskId, cpsolve::model::TaskRef> =
        std::collections::HashMap::new();
    for input in jobs {
        let j = b.add_job_with_priority(
            input.release.as_millis(),
            input.job.deadline.as_millis(),
            input.priority,
        );
        job_ids.push(input.job.id);
        for t in &input.tasks {
            let tr = b.add_task(j, kind_to_slot(t.kind), t.exec_time.as_millis(), t.req);
            task_ids.push(t.id);
            task_index.insert(t.id, tr);
            if let Some((rid, start)) = t.pinned {
                // A pin onto a resource outside the model (e.g. one that
                // went down between notification and round) is corrupt
                // state the round must surface, not abort on.
                let rr = res_index(rid)
                    .ok_or_else(|| format!("task {} pinned to unknown resource {rid:?}", t.id))?;
                b.fix_task(tr, rr, start.as_millis());
            }
        }
        // Workflow edges (the paper's future-work generalization): only
        // edges whose endpoints are both still in the model apply — a
        // completed predecessor imposes nothing further.
        for &(before, after) in &input.job.precedences {
            if let (Some(&a), Some(&bb)) = (task_index.get(&before), task_index.get(&after)) {
                b.add_precedence(a, bb);
            }
        }
    }
    Ok((task_ids, job_ids))
}

/// Build the full multi-resource model (the paper's base formulation).
pub fn build_model(resources: &[Resource], jobs: &[JobInput<'_>]) -> Result<MappedModel, String> {
    let mut b = ModelBuilder::new();
    let mut res_ids = Vec::with_capacity(resources.len());
    let mut index = std::collections::HashMap::new();
    for r in resources {
        let rr = b.add_resource(r.map_capacity, r.reduce_capacity);
        index.insert(r.id, rr);
        res_ids.push(r.id);
    }
    let (task_ids, job_ids) = add_jobs(&mut b, jobs, |rid| index.get(&rid).copied())?;
    Ok(MappedModel {
        model: b.build()?,
        task_ids,
        job_ids,
        res_ids,
    })
}

/// Build the single-combined-resource model of the §V.D optimization: one
/// resource whose map/reduce capacities are the cluster totals. Pinned
/// tasks keep their start times but all pin to the combined resource (their
/// true resource is restored by the matchmaking step).
pub fn build_combined_model(
    resources: &[Resource],
    jobs: &[JobInput<'_>],
) -> Result<MappedModel, String> {
    let map_total: u32 = resources.iter().map(|r| r.map_capacity).sum();
    let reduce_total: u32 = resources.iter().map(|r| r.reduce_capacity).sum();
    let mut b = ModelBuilder::new();
    let combined = b.add_resource(map_total, reduce_total);
    let (task_ids, job_ids) = add_jobs(&mut b, jobs, |_| Some(combined))?;
    Ok(MappedModel {
        model: b.build()?,
        task_ids,
        job_ids,
        res_ids: vec![ResourceId(u32::MAX)], // synthetic
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::model::homogeneous_cluster;
    use workload::{JobId, Task};

    fn mk_job(id: u32, s: i64, d: i64, maps: usize, reduces: usize) -> Job {
        let mut next = id * 100;
        let mut task = |kind, secs: i64| {
            let t = Task {
                id: TaskId(next),
                job: JobId(id),
                kind,
                exec_time: SimTime::from_secs(secs),
                req: 1,
            };
            next += 1;
            t
        };
        Job {
            id: JobId(id),
            arrival: SimTime::from_secs(s),
            earliest_start: SimTime::from_secs(s),
            deadline: SimTime::from_secs(d),
            map_tasks: (0..maps).map(|_| task(TaskKind::Map, 10)).collect(),
            reduce_tasks: (0..reduces).map(|_| task(TaskKind::Reduce, 5)).collect(),
            precedences: vec![],
        }
    }

    fn inputs(job: &Job, now: i64) -> JobInput<'_> {
        JobInput {
            job,
            release: job.earliest_start.max(SimTime::from_secs(now)),
            priority: job.deadline.as_millis(),
            tasks: job
                .tasks()
                .map(|t| TaskInput {
                    id: t.id,
                    kind: t.kind,
                    exec_time: t.exec_time,
                    req: t.req,
                    pinned: None,
                })
                .collect(),
        }
    }

    #[test]
    fn full_model_mirrors_inputs() {
        let cluster = homogeneous_cluster(3, 2, 1);
        let job = mk_job(0, 5, 200, 2, 1);
        let mm = build_model(&cluster, &[inputs(&job, 0)]).unwrap();
        assert_eq!(mm.model.n_resources(), 3);
        assert_eq!(mm.model.n_tasks(), 3);
        assert_eq!(mm.model.n_jobs(), 1);
        assert_eq!(mm.task_ids.len(), 3);
        assert_eq!(mm.model.jobs[0].release, 5000);
        assert_eq!(mm.model.jobs[0].deadline, 200_000);
        assert_eq!(mm.model.resources[0].map_cap, 2);
        assert_eq!(mm.model.resources[0].reduce_cap, 1);
    }

    #[test]
    fn release_uses_now_when_later() {
        let cluster = homogeneous_cluster(1, 1, 1);
        let job = mk_job(0, 5, 200, 1, 0);
        let mm = build_model(&cluster, &[inputs(&job, 50)]).unwrap();
        assert_eq!(mm.model.jobs[0].release, 50_000, "Table 2 lines 1–3");
    }

    #[test]
    fn combined_model_sums_capacities() {
        let cluster = homogeneous_cluster(4, 2, 3);
        let job = mk_job(0, 0, 500, 3, 2);
        let mm = build_combined_model(&cluster, &[inputs(&job, 0)]).unwrap();
        assert_eq!(mm.model.n_resources(), 1);
        assert_eq!(mm.model.resources[0].map_cap, 8);
        assert_eq!(mm.model.resources[0].reduce_cap, 12);
    }

    #[test]
    fn pinned_task_is_fixed_in_model() {
        let cluster = homogeneous_cluster(2, 1, 1);
        let job = mk_job(0, 0, 500, 1, 0);
        let mut ji = inputs(&job, 10);
        ji.tasks[0].pinned = Some((ResourceId(1), SimTime::from_secs(7)));
        let mm = build_model(&cluster, &[ji]).unwrap();
        let spec = &mm.model.tasks[0];
        assert_eq!(spec.fixed, Some((ResRef(1), 7000)));
        // Pinned start may precede "now": the task is already running.
        assert_eq!(mm.model.task_release(cpsolve::model::TaskRef(0)), 7000);
    }

    #[test]
    fn pin_on_unknown_resource_is_an_error_not_a_panic() {
        let cluster = homogeneous_cluster(2, 1, 1);
        let job = mk_job(0, 0, 500, 1, 0);
        let mut ji = inputs(&job, 10);
        // Pin onto a resource id outside the model — corrupt state the
        // round must surface as a model-build failure.
        ji.tasks[0].pinned = Some((ResourceId(99), SimTime::from_secs(7)));
        let err = build_model(&cluster, &[ji]).unwrap_err();
        assert!(err.contains("unknown resource"), "{err}");
    }

    #[test]
    fn completed_tasks_are_simply_absent() {
        let cluster = homogeneous_cluster(1, 2, 2);
        let job = mk_job(0, 0, 500, 2, 1);
        let mut ji = inputs(&job, 0);
        ji.tasks.remove(0); // first map completed → excluded by the caller
        let mm = build_model(&cluster, &[ji]).unwrap();
        assert_eq!(mm.model.n_tasks(), 2);
    }
}
