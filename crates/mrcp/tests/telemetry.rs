#![allow(clippy::field_reassign_with_default)]
//! Single-manager telemetry integration: the registry's counters must
//! reconcile exactly with the manager's own `ManagerStats`, a live
//! registry and subscriber must not perturb the run, and the default
//! queue capacity must absorb a default-size run without drops.

use mrcp::sim_driver::{simulate, simulate_with};
use mrcp::{MrcpConfig, MrcpRm, SimConfig, SolveBudget};
use rand::rngs::StdRng;
use rand::SeedableRng;
use telemetry::{EventFilter, EventKind, Telemetry, DEFAULT_QUEUE_CAP};
use workload::{Job, Resource, SyntheticConfig, SyntheticGenerator};

fn det_sim() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.manager = MrcpConfig {
        budget: SolveBudget {
            node_limit: 2_000,
            fail_limit: 2_000,
            time_limit_ms: None,
            adaptive: None,
            warm_start: true,
            workers: 1,
            ..SolveBudget::default()
        },
        ..Default::default()
    };
    cfg
}

fn workload(n: usize, seed: u64) -> (Vec<Resource>, Vec<Job>) {
    let cfg = SyntheticConfig {
        maps_per_job: (1, 6),
        reduces_per_job: (1, 3),
        e_max: 10,
        lambda: 0.05,
        resources: 4,
        map_capacity: 2,
        reduce_capacity: 2,
        s_max: 100,
        ..Default::default()
    };
    let cluster = cfg.cluster();
    let mut gen = SyntheticGenerator::new(cfg, StdRng::seed_from_u64(seed));
    (cluster, gen.take_jobs(n))
}

#[test]
fn registry_reconciles_with_manager_stats() {
    let cfg = det_sim();
    let (resources, jobs) = workload(25, 42);

    let tel = Telemetry::new();
    let tail = tel.bus.subscribe(EventFilter::default(), DEFAULT_QUEUE_CAP);
    let plain = simulate(&cfg, &resources, jobs.clone());
    let (live, _, rm) = simulate_with(&cfg, &resources, jobs, |mc| {
        let mut rm = MrcpRm::new(mc, resources.clone());
        rm.set_telemetry(&tel);
        rm
    });

    // Observational only: identical outcome with instruments attached.
    assert_eq!(
        plain.deterministic_signature(),
        live.deterministic_signature(),
        "live telemetry perturbed the run"
    );

    let stats = rm.stats();
    let reg = &tel.registry;
    let c = |name: &str| reg.counter(name, &[]).get();
    // Exactly one rung counter fires per solver invocation.
    let rung_sum: u64 = ["split_cp", "full_cp", "lns", "greedy", "failed"]
        .iter()
        .map(|rung| reg.counter("mrcp_rounds_total", &[("rung", rung)]).get())
        .sum();
    assert_eq!(rung_sum, stats.invocations);
    assert_eq!(
        reg.counter("mrcp_rounds_total", &[("rung", "failed")])
            .get(),
        stats.failed_rounds
    );
    assert_eq!(
        reg.counter("mrcp_rounds_total", &[("rung", "lns")]).get(),
        stats.lns_rounds
    );
    assert_eq!(c("mrcp_warm_rounds_total"), stats.warm_rounds);
    assert_eq!(
        c("mrcp_cache_invalidations_total"),
        stats.cache_invalidations
    );
    assert_eq!(c("mrcp_tasks_failed_total"), stats.tasks_failed);
    assert_eq!(c("mrcp_tasks_requeued_total"), stats.tasks_requeued);
    assert_eq!(c("mrcp_jobs_abandoned_total"), stats.jobs_abandoned);
    assert_eq!(c("mrcp_jobs_shed_total"), stats.jobs_shed);
    assert_eq!(c("mrcp_budget_adaptations_total"), stats.budget_adaptations);
    assert_eq!(
        reg.counter("mrcp_admission_total", &[("verdict", "rejected")])
            .get(),
        stats.jobs_rejected
    );
    assert_eq!(
        reg.counter("mrcp_admission_total", &[("verdict", "renegotiated")])
            .get(),
        stats.jobs_renegotiated
    );
    // The solve-latency histogram saw every invocation.
    assert_eq!(
        reg.histogram("mrcp_round_solve_us", &[], telemetry::LATENCY_US_BOUNDS)
            .count(),
        stats.invocations
    );
    // A drained run holds no jobs.
    assert_eq!(reg.gauge("mrcp_jobs_in_system", &[]).get(), 0);

    // Default queue capacity absorbs a default-size run without drops.
    let events = tail.drain();
    assert_eq!(tel.bus.dropped_events(), 0, "event bus overflowed");
    assert_eq!(events.len() as u64, tel.bus.published());
    let rounds = events
        .iter()
        .filter(|e| e.kind == EventKind::RoundSolved)
        .count() as u64;
    assert_eq!(rounds, stats.invocations, "one RoundSolved per invocation");
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::AdmissionAdmitted),
        "admissions must publish events"
    );
}

#[test]
fn disabled_telemetry_is_the_default_and_costs_nothing_observable() {
    let cfg = det_sim();
    let (resources, jobs) = workload(12, 7);
    // A manager that never saw set_telemetry must behave identically to
    // one attached to a disabled handle.
    let plain = simulate(&cfg, &resources, jobs.clone());
    let tel = Telemetry::disabled();
    let (live, _, _) = simulate_with(&cfg, &resources, jobs, |mc| {
        let mut rm = MrcpRm::new(mc, resources.clone());
        rm.set_telemetry(&tel);
        rm
    });
    assert_eq!(
        plain.deterministic_signature(),
        live.deterministic_signature()
    );
    assert!(tel.registry.snapshot().metrics.is_empty());
    assert_eq!(tel.bus.published(), 0);
}
