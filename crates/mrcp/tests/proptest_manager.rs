#![allow(clippy::type_complexity, clippy::field_reassign_with_default)]
//! Property tests for MRCP-RM over random open-system workloads: the
//! pipeline always drains, outcomes are consistent, schedules are audited,
//! and runs are deterministic.

use desim::SimTime;
use mrcp::sim_driver::simulate_detailed;
use mrcp::{MrcpConfig, SimConfig, SolveBudget};
use proptest::prelude::*;
use workload::model::{heterogeneous_cluster, homogeneous_cluster};
use workload::{Job, JobId, Resource, Task, TaskId, TaskKind};

#[derive(Debug, Clone)]
struct W {
    cluster: Vec<Resource>,
    jobs: Vec<(i64, i64, i64, Vec<i64>, Vec<i64>)>,
}

fn workload() -> impl Strategy<Value = W> {
    let hom = (1u32..=3, 1u32..=2, 1u32..=2).prop_map(|(m, cm, cr)| homogeneous_cluster(m, cm, cr));
    let het = prop::collection::vec((1u32..=2, 0u32..=2), 2..=3).prop_map(|caps| {
        // guarantee at least one reduce slot somewhere
        let mut caps = caps;
        if caps.iter().all(|c| c.1 == 0) {
            caps[0].1 = 1;
        }
        heterogeneous_cluster(&caps)
    });
    let cluster = prop_oneof![hom, het];
    let job = (
        0i64..=40,
        0i64..=15,
        5i64..=80,
        prop::collection::vec(1i64..=6, 1..=3),
        prop::collection::vec(1i64..=4, 0..=2),
    );
    (cluster, prop::collection::vec(job, 1..=6)).prop_map(|(cluster, jobs)| W { cluster, jobs })
}

fn jobs_of(w: &W) -> Vec<Job> {
    let mut next_task = 0u32;
    let mut jobs: Vec<Job> = w
        .jobs
        .iter()
        .enumerate()
        .map(|(i, (arr, s_off, window, maps, reduces))| {
            let mut mk = |kind, secs: i64| {
                let t = Task {
                    id: TaskId(next_task),
                    job: JobId(i as u32),
                    kind,
                    exec_time: SimTime::from_secs(secs),
                    req: 1,
                };
                next_task += 1;
                t
            };
            let arrival = SimTime::from_secs(*arr);
            let start = arrival + SimTime::from_secs(*s_off);
            Job {
                id: JobId(i as u32),
                arrival,
                earliest_start: start,
                deadline: start + SimTime::from_secs(*window),
                map_tasks: maps.iter().map(|&s| mk(TaskKind::Map, s)).collect(),
                reduce_tasks: reduces.iter().map(|&s| mk(TaskKind::Reduce, s)).collect(),
                precedences: vec![],
            }
        })
        .collect();
    jobs.sort_by_key(|j| j.arrival);
    jobs
}

fn audited_config() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.manager = MrcpConfig {
        verify_schedules: true, // every installed schedule independently checked
        budget: SolveBudget {
            node_limit: 2_000,
            fail_limit: 2_000,
            time_limit_ms: Some(50),
            adaptive: None,
            warm_start: true,
            workers: 1,
            ..SolveBudget::default()
        },
        ..Default::default()
    };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every workload drains with consistent, audited outcomes — on
    /// homogeneous and heterogeneous clusters alike.
    #[test]
    fn open_system_always_drains(w in workload()) {
        let jobs = jobs_of(&w);
        let n = jobs.len();
        let (m, outcomes) = simulate_detailed(&audited_config(), &w.cluster, jobs);
        prop_assert_eq!(m.arrived, n);
        prop_assert_eq!(m.completed, n);
        prop_assert_eq!(m.late, outcomes.iter().filter(|o| o.late).count());
        for o in &outcomes {
            prop_assert!(o.completion >= o.earliest_start);
            prop_assert_eq!(o.late, o.completion > o.deadline);
        }
        prop_assert!(m.p95_turnaround_s <= m.max_turnaround_s + 1e-9);
        prop_assert!(m.mean_turnaround_s <= m.max_turnaround_s + 1e-9);
    }

    /// Identical inputs → identical simulated outcomes (solver budget and
    /// wall clock do not leak into simulated behaviour).
    #[test]
    fn runs_are_reproducible(w in workload()) {
        let (a, ao) = simulate_detailed(&audited_config(), &w.cluster, jobs_of(&w));
        let (b, bo) = simulate_detailed(&audited_config(), &w.cluster, jobs_of(&w));
        prop_assert_eq!(ao, bo);
        prop_assert_eq!(a.late, b.late);
        prop_assert_eq!(a.invocations, b.invocations);
    }

    /// The split (§V.D) and monolithic paths both drain every workload with
    /// verified schedules.
    #[test]
    fn split_and_full_both_audit_clean(w in workload()) {
        let jobs = jobs_of(&w);
        let mut full_cfg = audited_config();
        full_cfg.manager.use_split = false;
        let (split, _) = simulate_detailed(&audited_config(), &w.cluster, jobs.clone());
        let (full, _) = simulate_detailed(&full_cfg, &w.cluster, jobs);
        prop_assert_eq!(split.completed, full.completed);
    }
}
