//! Cross-round incremental reuse (the manager's `RoundCache`): a second
//! scheduling round over a mostly-unchanged job set replays the previous
//! round's placements as warm start, never degrades the objective, and the
//! cache drops on resource availability changes.

use desim::SimTime;
use mrcp::{MrcpConfig, MrcpRm, ScheduleEntry};
use workload::model::homogeneous_cluster;
use workload::{Job, JobId, Task, TaskId, TaskKind};

fn mk_job(id: u32, s: i64, d: i64, maps: &[i64], reduces: &[i64]) -> Job {
    let mut next = id * 1000;
    let mut task = |kind, secs: i64| {
        let t = Task {
            id: TaskId(next),
            job: JobId(id),
            kind,
            exec_time: SimTime::from_secs(secs),
            req: 1,
        };
        next += 1;
        t
    };
    Job {
        id: JobId(id),
        arrival: SimTime::from_secs(s),
        earliest_start: SimTime::from_secs(s),
        deadline: SimTime::from_secs(d),
        map_tasks: maps.iter().map(|&e| task(TaskKind::Map, e)).collect(),
        reduce_tasks: reduces.iter().map(|&e| task(TaskKind::Reduce, e)).collect(),
        precedences: vec![],
    }
}

/// Number of late jobs in a plan (every task unstarted, so the plan holds
/// each job's full remaining work).
fn late_jobs(plan: &[ScheduleEntry], jobs: &[Job]) -> usize {
    jobs.iter()
        .filter(|j| {
            let completion = plan
                .iter()
                .filter(|e| e.job == j.id)
                .map(|e| e.end)
                .max()
                .expect("job has entries in the plan");
            completion > j.deadline
        })
        .count()
}

/// A tight two-resource scenario: enough contention that placements
/// matter, loose enough that everything is schedulable on time.
fn base_jobs() -> Vec<Job> {
    vec![
        mk_job(0, 0, 40, &[10, 10], &[5]),
        mk_job(1, 0, 45, &[10, 10], &[5]),
        mk_job(2, 0, 60, &[10], &[5]),
    ]
}

#[test]
fn second_round_with_one_extra_job_reuses_prior_assignments() {
    let mut rm = MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(2, 1, 1));
    let mut jobs = base_jobs();
    for j in &jobs {
        rm.submit(j.clone(), SimTime::ZERO).unwrap();
    }
    let first = rm.reschedule(SimTime::ZERO);
    assert!(!first.is_empty());
    assert_eq!(rm.stats().warm_rounds, 0, "first round is cold");

    // One new arrival; the surviving jobs' fingerprints are unchanged, so
    // their cached placements feed the warm start.
    let extra = mk_job(9, 0, 100, &[10], &[]);
    jobs.push(extra.clone());
    rm.submit(extra, SimTime::ZERO).unwrap();
    let second = rm.reschedule(SimTime::ZERO);
    assert_eq!(rm.stats().warm_rounds, 1, "second round is warm");

    // The warm round must not degrade the objective relative to a cold
    // manager solving the identical state from scratch.
    let mut cold = MrcpRm::new(
        MrcpConfig {
            reuse_rounds: false,
            ..Default::default()
        },
        homogeneous_cluster(2, 1, 1),
    );
    for j in &jobs {
        cold.submit(j.clone(), SimTime::ZERO).unwrap();
    }
    let cold_plan = cold.reschedule(SimTime::ZERO);
    assert_eq!(cold.stats().warm_rounds, 0, "reuse disabled stays cold");
    assert!(
        late_jobs(&second, &jobs) <= late_jobs(&cold_plan, &jobs),
        "warm round degraded the objective: warm {} > cold {}",
        late_jobs(&second, &jobs),
        late_jobs(&cold_plan, &jobs)
    );
}

#[test]
fn unchanged_rounds_stay_warm_and_stable() {
    let mut rm = MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(2, 1, 1));
    let jobs = base_jobs();
    for j in &jobs {
        rm.submit(j.clone(), SimTime::ZERO).unwrap();
    }
    let first = rm.reschedule(SimTime::ZERO);
    let second = rm.reschedule(SimTime::ZERO);
    assert_eq!(rm.stats().warm_rounds, 1);
    assert!(late_jobs(&second, &jobs) <= late_jobs(&first, &jobs));
}

#[test]
fn resource_down_drops_the_cache() {
    let mut rm = MrcpRm::new(MrcpConfig::default(), homogeneous_cluster(2, 1, 1));
    for j in base_jobs() {
        rm.submit(j, SimTime::ZERO).unwrap();
    }
    rm.reschedule(SimTime::ZERO);

    let victim = rm.resources()[0].id;
    rm.resource_down(victim, SimTime::ZERO).unwrap();
    assert_eq!(rm.stats().cache_invalidations, 1);

    // The next round runs cold (no cache), on the surviving resource only.
    let plan = rm.reschedule(SimTime::ZERO);
    assert_eq!(rm.stats().warm_rounds, 0, "post-crash round must be cold");
    assert!(plan.iter().all(|e| e.resource != victim));

    // Recovery also invalidates (capacity reappears; cached placements
    // would under-use it silently otherwise). The post-crash round above
    // refilled the cache, so this is a second invalidation.
    rm.resource_up(victim, SimTime::ZERO).unwrap();
    assert_eq!(rm.stats().cache_invalidations, 2);
    let recovered = rm.reschedule(SimTime::ZERO);
    assert_eq!(rm.stats().warm_rounds, 0, "post-recovery round is cold too");
    assert!(!recovered.is_empty());
}

#[test]
fn reuse_can_be_disabled() {
    let mut rm = MrcpRm::new(
        MrcpConfig {
            reuse_rounds: false,
            ..Default::default()
        },
        homogeneous_cluster(2, 1, 1),
    );
    for j in base_jobs() {
        rm.submit(j, SimTime::ZERO).unwrap();
    }
    rm.reschedule(SimTime::ZERO);
    rm.reschedule(SimTime::ZERO);
    assert_eq!(rm.stats().warm_rounds, 0);
}
