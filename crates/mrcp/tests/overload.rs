//! End-to-end overload behaviour: with admission control, backpressure,
//! and the adaptive budget controller engaged, driving the arrival rate
//! well past cluster saturation must degrade gracefully — admitted jobs
//! keep their SLA performance, the turned-away fraction absorbs the
//! excess, the queue stays bounded, and the run always drains.

use desim::SimTime;
use mrcp::manager::SolveBudget;
use mrcp::{
    simulate, soak, AdmissionConfig, AdmissionPolicy, BudgetController, SimConfig, SoakLimits,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use workload::{ArrivalConfig, Job, Resource, SyntheticConfig, SyntheticGenerator};

/// A small cluster with tight deadlines, driven at a configurable rate and
/// arrival shape.
fn workload(n: usize, lambda: f64, arrival: ArrivalConfig, seed: u64) -> (Vec<Resource>, Vec<Job>) {
    let cfg = SyntheticConfig {
        maps_per_job: (1, 6),
        reduces_per_job: (1, 3),
        e_max: 10,
        lambda,
        resources: 3,
        map_capacity: 2,
        reduce_capacity: 2,
        p_future_start: 0.0,
        s_max: 1,
        deadline_multiplier: 2.0,
        arrival,
        cells: Default::default(),
        solver: Default::default(),
    };
    let cluster = cfg.cluster();
    let mut gen = SyntheticGenerator::new(cfg, StdRng::seed_from_u64(seed));
    (cluster, gen.take_jobs(n))
}

/// The protected configuration: feasibility probe, bounded queue, adaptive
/// budgets, and a capped solver so rounds stay short.
fn protected(policy: AdmissionPolicy, max_pending: usize) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.manager.budget = SolveBudget {
        node_limit: 2_000,
        fail_limit: 2_000,
        time_limit_ms: Some(50),
        adaptive: None,
        warm_start: true,
        workers: 1,
        ..SolveBudget::default()
    };
    cfg.manager.admission = AdmissionConfig {
        policy,
        max_pending_jobs: Some(max_pending),
    };
    cfg.manager.controller = Some(BudgetController::default());
    cfg
}

#[test]
fn graceful_degradation_past_saturation() {
    // λ an order of magnitude past what 3×2 map slots can absorb.
    let (cluster, jobs) = workload(60, 1.0, ArrivalConfig::default(), 40);
    let open = simulate(&SimConfig::default(), &cluster, jobs.clone());
    let gated = simulate(&protected(AdmissionPolicy::Strict, 32), &cluster, jobs);

    assert_eq!(open.arrived, 60);
    assert_eq!(gated.arrived, 60);
    // The unprotected manager admits everything and misses deadlines en
    // masse; the protected one turns away the infeasible excess and keeps
    // the SLA performance of what it admits.
    assert!(
        gated.jobs_rejected + gated.jobs_shed > 0,
        "overload must be absorbed by rejections/shedding"
    );
    assert!(
        gated.p_late <= open.p_late,
        "admitted-job P must be bounded: gated {} vs open {}",
        gated.p_late,
        open.p_late
    );
    // Conservation: every arrival completes, is rejected, or is shed.
    assert_eq!(
        gated.completed as u64 + gated.jobs_rejected + gated.jobs_shed,
        60
    );
}

#[test]
fn burst_soak_stays_within_bounds() {
    // MMPP bursts five times past the calm rate.
    let (cluster, jobs) = workload(80, 0.05, ArrivalConfig::mmpp(0.25, 200.0, 40.0), 41);
    let limits = SoakLimits {
        max_queue_depth: 24,
        max_round_latency: Duration::from_secs(2),
        max_drain: SimTime::from_secs(3_600),
    };
    let report = soak(
        &protected(AdmissionPolicy::Strict, 24),
        &cluster,
        jobs,
        &limits,
    );
    assert!(report.ok(), "soak violations: {:?}", report.violations);
    assert_eq!(report.metrics.arrived, 80);
}

#[test]
fn flash_crowd_and_ramp_both_drain_under_protection() {
    for (name, arrival) in [
        ("flash-crowd", ArrivalConfig::flash_crowd(0.5, 300.0, 30.0)),
        ("ramp", ArrivalConfig::ramp(0.5, 600.0)),
    ] {
        let (cluster, jobs) = workload(50, 0.05, arrival, 42);
        let m = simulate(&protected(AdmissionPolicy::Renegotiate, 24), &cluster, jobs);
        assert_eq!(m.arrived, 50, "{name}");
        assert_eq!(
            m.completed as u64 + m.jobs_rejected + m.jobs_shed,
            50,
            "{name}: conservation"
        );
        assert!(
            m.max_queue_depth <= 24,
            "{name}: queue bounded, got {}",
            m.max_queue_depth
        );
    }
}

/// Long-horizon soak (minutes of wall clock): hundreds of jobs through
/// sustained MMPP bursts. Run explicitly (or from the CI soak job) with
/// `cargo test -p mrcp --test overload -- --ignored`.
#[test]
#[ignore = "long soak; run with -- --ignored"]
fn long_soak_survives_sustained_bursts() {
    let (cluster, jobs) = workload(400, 0.05, ArrivalConfig::mmpp(0.5, 120.0, 60.0), 43);
    let limits = SoakLimits {
        max_queue_depth: 48,
        max_round_latency: Duration::from_secs(2),
        max_drain: SimTime::from_secs(7_200),
    };
    let report = soak(
        &protected(AdmissionPolicy::Strict, 48),
        &cluster,
        jobs,
        &limits,
    );
    assert!(report.ok(), "soak violations: {:?}", report.violations);
    assert_eq!(report.metrics.arrived, 400);
    assert!(
        report.metrics.jobs_rejected + report.metrics.jobs_shed > 0,
        "sustained bursts must engage the protection"
    );
}
