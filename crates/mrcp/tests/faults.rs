//! End-to-end fault injection: the simulation must survive task failures,
//! stragglers, and a mid-run resource crash without panicking, drain every
//! job that keeps within its retry budget, and report non-zero fault
//! metrics — the robustness the paper's reliable-cluster evaluation never
//! exercises.

use desim::SimTime;
use mrcp::manager::{MrcpConfig, SolveBudget};
use mrcp::{simulate, simulate_detailed, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::{FaultConfig, Job, Outage, Resource, SyntheticConfig, SyntheticGenerator};

fn small_workload(n: usize, lambda: f64, seed: u64) -> (Vec<Resource>, Vec<Job>) {
    let cfg = SyntheticConfig {
        maps_per_job: (1, 6),
        reduces_per_job: (1, 3),
        e_max: 10,
        lambda,
        resources: 4,
        map_capacity: 2,
        reduce_capacity: 2,
        s_max: 100,
        ..Default::default()
    };
    let cluster = cfg.cluster();
    let mut gen = SyntheticGenerator::new(cfg, StdRng::seed_from_u64(seed));
    (cluster, gen.take_jobs(n))
}

/// The acceptance scenario: task failure probability ≥ 0.1 plus one
/// scheduled crash/recovery mid-run. Every job not abandoned must finish,
/// and the fault metrics must be non-zero.
#[test]
fn faulty_run_drains_with_nonzero_fault_metrics() {
    let (cluster, jobs) = small_workload(30, 0.05, 11);
    let crash_at = SimTime::from_secs(40);
    let cfg = SimConfig {
        faults: FaultConfig {
            task_failure_prob: 0.15,
            straggler_prob: 0.10,
            straggler_factor: (1.5, 3.0),
            retry_budget: 5,
            scheduled_outages: vec![Outage {
                resource: cluster[0].id,
                at: crash_at,
                duration: SimTime::from_secs(60),
            }],
            ..Default::default()
        },
        fault_seed: 7,
        ..Default::default()
    };
    let n = jobs.len();
    let (m, outcomes) = simulate_detailed(&cfg, &cluster, jobs);

    assert_eq!(m.arrived, n);
    assert_eq!(
        m.completed + m.jobs_abandoned,
        n,
        "every job completes or is abandoned"
    );
    assert!(m.tasks_failed > 0, "failure injection must fire");
    assert!(m.tasks_requeued > 0, "failed attempts are retried");
    assert_eq!(m.resource_crashes, 1, "the scheduled outage takes effect");
    assert!(m.end_time_s > crash_at.as_secs_f64());
    // Completions stay internally consistent despite the chaos.
    for o in &outcomes {
        assert!(o.completion >= o.earliest_start);
        assert_eq!(o.late, o.completion > o.deadline);
    }
    // Each job completes at most once.
    let mut ids: Vec<_> = outcomes.iter().map(|o| o.job).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), outcomes.len(), "no job completes twice");
}

/// Random crash/repair renewal process: the run still terminates (the
/// renewal stops re-arming once the workload drains) and stays consistent.
#[test]
fn random_crash_renewal_process_terminates() {
    let (cluster, jobs) = small_workload(20, 0.05, 13);
    let cfg = SimConfig {
        faults: FaultConfig {
            task_failure_prob: 0.05,
            resource_mttf: Some(SimTime::from_secs(120)),
            resource_mttr: Some(SimTime::from_secs(20)),
            retry_budget: 5,
            ..Default::default()
        },
        fault_seed: 3,
        ..Default::default()
    };
    let n = jobs.len();
    let m = simulate(&cfg, &cluster, jobs);
    assert_eq!(m.arrived, n);
    assert_eq!(m.completed + m.jobs_abandoned, n);
}

/// Identical fault seeds reproduce the run exactly; different seeds are
/// allowed to (and here do) diverge.
#[test]
fn fault_runs_are_deterministic_per_seed() {
    let (cluster, jobs) = small_workload(20, 0.05, 17);
    let cfg = SimConfig {
        faults: FaultConfig {
            task_failure_prob: 0.2,
            straggler_prob: 0.1,
            straggler_factor: (1.5, 2.5),
            ..Default::default()
        },
        fault_seed: 42,
        ..Default::default()
    };
    let a = simulate(&cfg, &cluster, jobs.clone());
    let b = simulate(&cfg, &cluster, jobs);
    // (`o_per_job_s` is measured wall clock and may differ between runs;
    // everything simulated must not.)
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.late, b.late);
    assert_eq!(a.tasks_failed, b.tasks_failed);
    assert_eq!(a.tasks_requeued, b.tasks_requeued);
    assert_eq!(a.stragglers, b.stragglers);
    assert_eq!(a.jobs_abandoned, b.jobs_abandoned);
    assert_eq!(a.mean_turnaround_s, b.mean_turnaround_s);
    assert_eq!(a.end_time_s, b.end_time_s);
    assert!(a.tasks_failed > 0);
}

/// A tiny retry budget under heavy failure must abandon at least one job
/// (and report it) rather than retry forever or panic.
#[test]
fn exhausted_retry_budget_abandons_jobs() {
    let (cluster, jobs) = small_workload(15, 0.05, 19);
    let cfg = SimConfig {
        faults: FaultConfig {
            task_failure_prob: 0.6,
            retry_budget: 0,
            ..Default::default()
        },
        fault_seed: 5,
        ..Default::default()
    };
    let n = jobs.len();
    let m = simulate(&cfg, &cluster, jobs);
    assert_eq!(m.completed + m.jobs_abandoned, n);
    assert!(
        m.jobs_abandoned > 0,
        "budget 0 + p=0.6 must abandon something"
    );
}

/// Forcing `Status::Unknown` from every CP rung (zero node budget, warm
/// starts off) must degrade to the greedy schedule, not panic — and the
/// simulation still drains, faults and all.
#[test]
fn forced_unknown_solver_outcome_degrades_gracefully() {
    let (cluster, jobs) = small_workload(15, 0.05, 23);
    let mut cfg = SimConfig {
        faults: FaultConfig {
            task_failure_prob: 0.1,
            retry_budget: 5,
            ..Default::default()
        },
        fault_seed: 9,
        ..Default::default()
    };
    cfg.manager = MrcpConfig {
        budget: SolveBudget {
            node_limit: 0,
            fail_limit: 0,
            time_limit_ms: Some(0),
            adaptive: None,
            warm_start: false,
            workers: 1,
            ..SolveBudget::default()
        },
        ..Default::default()
    };
    let n = jobs.len();
    let m = simulate(&cfg, &cluster, jobs);
    assert_eq!(m.completed + m.jobs_abandoned, n);
    assert!(
        m.degraded_rounds > 0,
        "every round should fall down the ladder"
    );
    assert_eq!(m.failed_rounds, 0, "greedy never fails on consistent state");
}
