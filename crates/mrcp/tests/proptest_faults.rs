#![allow(clippy::type_complexity, clippy::field_reassign_with_default)]
//! Work conservation under random fault injection: whatever combination of
//! task failures, stragglers, and resource outages is thrown at the
//! simulator, every arrived job either completes exactly once or is
//! abandoned after exhausting its retry budget — nothing is lost, nothing
//! is duplicated, and no completed job leaves queued tasks behind. The
//! manager's state machine is exercised with `verify_schedules` on, so any
//! double-placement or capacity violation fails the independent audit (and
//! any stale-event mishandling trips the driver's own expectations).

use desim::SimTime;
use mrcp::sim_driver::simulate_detailed;
use mrcp::{MrcpConfig, SimConfig, SolveBudget};
use proptest::prelude::*;
use workload::model::homogeneous_cluster;
use workload::{FaultConfig, Job, JobId, Outage, Resource, Task, TaskId, TaskKind};

#[derive(Debug, Clone)]
struct W {
    cluster: Vec<Resource>,
    jobs: Vec<(i64, i64, i64, Vec<i64>, Vec<i64>)>,
}

fn workload() -> impl Strategy<Value = W> {
    let cluster =
        (1u32..=3, 1u32..=2, 1u32..=2).prop_map(|(m, cm, cr)| homogeneous_cluster(m, cm, cr));
    let job = (
        0i64..=40,
        0i64..=15,
        5i64..=80,
        prop::collection::vec(1i64..=6, 1..=3),
        prop::collection::vec(1i64..=4, 0..=2),
    );
    (cluster, prop::collection::vec(job, 1..=6)).prop_map(|(cluster, jobs)| W { cluster, jobs })
}

fn faults() -> impl Strategy<Value = (FaultConfig, u64)> {
    (
        0.0f64..=0.5,
        0.0f64..=0.3,
        1.1f64..=3.0,
        0u32..=3,
        any::<bool>(),
        0i64..=60,
        1i64..=40,
        0u64..=u64::MAX,
    )
        .prop_map(
            |(p_fail, p_straggle, factor_hi, retries, outage, outage_at, outage_len, seed)| {
                let cfg = FaultConfig {
                    task_failure_prob: p_fail,
                    straggler_prob: p_straggle,
                    straggler_factor: (1.0, factor_hi),
                    retry_budget: retries,
                    scheduled_outages: if outage {
                        vec![Outage {
                            resource: workload::ResourceId(0),
                            at: SimTime::from_secs(outage_at),
                            duration: SimTime::from_secs(outage_len),
                        }]
                    } else {
                        vec![]
                    },
                    ..Default::default()
                };
                (cfg, seed)
            },
        )
}

fn jobs_of(w: &W) -> Vec<Job> {
    let mut next_task = 0u32;
    let mut jobs: Vec<Job> = w
        .jobs
        .iter()
        .enumerate()
        .map(|(i, (arr, s_off, window, maps, reduces))| {
            let mut mk = |kind, secs: i64| {
                let t = Task {
                    id: TaskId(next_task),
                    job: JobId(i as u32),
                    kind,
                    exec_time: SimTime::from_secs(secs),
                    req: 1,
                };
                next_task += 1;
                t
            };
            let arrival = SimTime::from_secs(*arr);
            let start = arrival + SimTime::from_secs(*s_off);
            Job {
                id: JobId(i as u32),
                arrival,
                earliest_start: start,
                deadline: start + SimTime::from_secs(*window),
                map_tasks: maps.iter().map(|&s| mk(TaskKind::Map, s)).collect(),
                reduce_tasks: reduces.iter().map(|&s| mk(TaskKind::Reduce, s)).collect(),
                precedences: vec![],
            }
        })
        .collect();
    jobs.sort_by_key(|j| j.arrival);
    jobs
}

fn sim_config(faults: FaultConfig, fault_seed: u64) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.manager = MrcpConfig {
        verify_schedules: true, // every installed schedule independently checked
        budget: SolveBudget {
            node_limit: 2_000,
            fail_limit: 2_000,
            time_limit_ms: Some(50),
            adaptive: None,
            warm_start: true,
            workers: 1,
            ..SolveBudget::default()
        },
        ..Default::default()
    };
    cfg.faults = faults;
    cfg.fault_seed = fault_seed;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work is conserved under arbitrary fault injection.
    #[test]
    fn faults_conserve_work((w, (fcfg, seed)) in (workload(), faults())) {
        let jobs = jobs_of(&w);
        let n = jobs.len();
        let (m, outcomes) = simulate_detailed(&sim_config(fcfg, seed), &w.cluster, jobs);
        prop_assert_eq!(m.arrived, n);
        // Every job either completes once or is abandoned — none lost.
        prop_assert_eq!(m.completed + m.jobs_abandoned, n);
        prop_assert_eq!(outcomes.len(), m.completed);
        let mut ids: Vec<JobId> = outcomes.iter().map(|o| o.job).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), m.completed, "a job completed twice");
        // Requeues can only come from failures or crash interruptions.
        if m.tasks_requeued > 0 {
            prop_assert!(m.tasks_failed > 0 || m.resource_crashes > 0);
        }
        // Abandonment requires at least one failed attempt.
        if m.jobs_abandoned > 0 {
            prop_assert!(m.tasks_failed > 0);
        }
        for o in &outcomes {
            prop_assert!(o.completion >= o.earliest_start);
            prop_assert_eq!(o.late, o.completion > o.deadline);
        }
    }

    /// With faults disabled the new machinery is invisible: metrics match a
    /// plain run field for field.
    #[test]
    fn inert_faults_change_nothing(w in workload()) {
        let base = {
            let mut c = sim_config(FaultConfig::default(), 0);
            c.fault_seed = 123; // seed is irrelevant when inactive
            c
        };
        let jobs = jobs_of(&w);
        let (a, ao) = simulate_detailed(&base, &w.cluster, jobs.clone());
        let (b, bo) = simulate_detailed(&sim_config(FaultConfig::default(), 0), &w.cluster, jobs);
        prop_assert_eq!(ao, bo);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.tasks_failed, 0u64);
        prop_assert_eq!(a.tasks_requeued, 0u64);
        prop_assert_eq!(a.stragglers, 0u64);
        prop_assert_eq!(a.resource_crashes, 0u64);
        prop_assert_eq!(a.jobs_abandoned, 0usize);
    }
}
