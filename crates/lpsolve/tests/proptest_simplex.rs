//! Property tests for the simplex solver built on constructed-feasibility:
//! generate a random point, build constraints it satisfies, and check the
//! solver's answer is (a) feasible and (b) at least as good — the defining
//! property of an optimum, verifiable without knowing the optimum.

use lpsolve::{solve, Cmp, Outcome, Problem};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Instance {
    objective: Vec<f64>,
    witness: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>, // coefficients, slack margin (≥ 0)
}

fn instance() -> impl Strategy<Value = Instance> {
    (2usize..=5, 1usize..=6).prop_flat_map(|(n, m)| {
        let objective = prop::collection::vec(-5.0f64..5.0, n);
        let witness = prop::collection::vec(0.0f64..10.0, n);
        let row = (prop::collection::vec(-3.0f64..3.0, n), 0.0f64..5.0);
        let rows = prop::collection::vec(row, m);
        (objective, witness, rows).prop_map(|(objective, witness, rows)| Instance {
            objective,
            witness,
            rows,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Constructed-feasible ≤-systems: solver finds a feasible point no
    /// worse than the witness (or honestly reports unboundedness).
    #[test]
    fn optimal_dominates_witness(inst in instance()) {
        let mut p = Problem::new();
        let vars: Vec<_> = inst.objective.iter().map(|&c| p.add_var(c)).collect();
        // Keep the region bounded so Unbounded can't occur: box vars.
        for &v in &vars {
            p.bound(v, 100.0);
        }
        for (coeffs, margin) in &inst.rows {
            let lhs_at_witness: f64 = coeffs
                .iter()
                .zip(&inst.witness)
                .map(|(c, x)| c * x)
                .sum();
            let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
            p.add_constraint(terms, Cmp::Le, lhs_at_witness + margin);
        }
        prop_assert!(p.is_feasible(&inst.witness, 1e-9), "witness feasible by construction");
        match solve(&p) {
            Outcome::Optimal(s) => {
                prop_assert!(p.is_feasible(&s.x, 1e-5), "solver point must be feasible");
                let w = p.objective_at(&inst.witness);
                prop_assert!(s.objective >= w - 1e-5,
                    "optimum {} below witness {}", s.objective, w);
            }
            other => prop_assert!(false, "boxed feasible LP must be Optimal, got {other:?}"),
        }
    }

    /// Equality systems built from a witness stay feasible and solvable.
    #[test]
    fn equality_systems_solve(
        witness in prop::collection::vec(0.0f64..10.0, 2..=4),
        coeffs in prop::collection::vec(prop::collection::vec(-2.0f64..2.0, 2..=4), 1..=2),
    ) {
        let n = witness.len();
        let mut p = Problem::new();
        let vars: Vec<_> = (0..n).map(|i| p.add_var(if i == 0 { 1.0 } else { 0.0 })).collect();
        for &v in &vars {
            p.bound(v, 50.0);
        }
        for row in &coeffs {
            let row = &row[..n.min(row.len())];
            if row.is_empty() { continue; }
            let rhs: f64 = row.iter().zip(&witness).map(|(c, x)| c * x).sum();
            let terms: Vec<_> = vars.iter().copied().zip(row.iter().copied()).collect();
            p.add_constraint(terms, Cmp::Eq, rhs);
        }
        match solve(&p) {
            Outcome::Optimal(s) => {
                prop_assert!(p.is_feasible(&s.x, 1e-4));
                prop_assert!(s.objective >= p.objective_at(&witness) - 1e-4);
            }
            other => prop_assert!(false, "witness-built Eq system must solve, got {other:?}"),
        }
    }

    /// Scaling invariance: multiplying the objective by a positive scalar
    /// scales the optimum and preserves an optimal point's feasibility.
    #[test]
    fn objective_scaling(k in 0.1f64..10.0) {
        let build = |scale: f64| {
            let mut p = Problem::new();
            let x = p.add_var(3.0 * scale);
            let y = p.add_var(5.0 * scale);
            p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
            p.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
            p.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
            p
        };
        let Outcome::Optimal(a) = solve(&build(1.0)) else { panic!() };
        let Outcome::Optimal(b) = solve(&build(k)) else { panic!() };
        prop_assert!((b.objective - k * a.objective).abs() < 1e-5);
    }
}
