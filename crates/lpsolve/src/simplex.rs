//! Two-phase primal simplex over a dense tableau.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible solution (or prove infeasibility); phase 2 maximizes the real
//! objective. Pivoting follows Bland's rule (smallest eligible index),
//! which rules out cycling and guarantees termination; an iteration cap
//! guards against pathological numerics anyway.

use crate::problem::{Cmp, Problem};

/// Numerical tolerance for pivoting and feasibility decisions.
const TOL: f64 = 1e-7;

/// A solved LP.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal assignment (length = problem variables).
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
    /// Simplex pivots performed across both phases.
    pub pivots: u64,
}

/// Result of a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Optimum found.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// Iteration cap hit (numerical trouble); nothing trustworthy returned.
    IterationLimit,
}

struct Tableau {
    /// `m × (cols + 1)` constraint rows, last column is the RHS.
    rows: Vec<Vec<f64>>,
    /// Objective row, same width (RHS cell = current objective value).
    z: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total structural + slack/surplus + artificial columns.
    cols: usize,
    /// Columns `>= art_from` are artificial.
    art_from: usize,
    pivots: u64,
}

impl Tableau {
    fn rhs(&self, r: usize) -> f64 {
        self.rows[r][self.cols]
    }

    /// One pivot: variable `e` enters, the row chosen by the ratio test
    /// leaves. Returns false when the column proves unboundedness.
    fn pivot_column(&mut self, e: usize) -> bool {
        // Ratio test with Bland tie-breaking on the leaving basic index.
        let mut leave: Option<(usize, f64)> = None;
        for r in 0..self.rows.len() {
            let a = self.rows[r][e];
            if a > TOL {
                let ratio = self.rhs(r) / a;
                let better = match leave {
                    None => true,
                    Some((lr, lratio)) => {
                        ratio < lratio - TOL
                            || (ratio < lratio + TOL && self.basis[r] < self.basis[lr])
                    }
                };
                if better {
                    leave = Some((r, ratio));
                }
            }
        }
        let Some((r, _)) = leave else {
            return false; // unbounded direction
        };
        self.do_pivot(r, e);
        true
    }

    fn do_pivot(&mut self, r: usize, e: usize) {
        self.pivots += 1;
        let p = self.rows[r][e];
        debug_assert!(p.abs() > TOL);
        for v in self.rows[r].iter_mut() {
            *v /= p;
        }
        let pivot_row = self.rows[r].clone();
        for (ri, row) in self.rows.iter_mut().enumerate() {
            if ri != r && row[e].abs() > 0.0 {
                let f = row[e];
                for (c, v) in row.iter_mut().enumerate() {
                    *v -= f * pivot_row[c];
                }
            }
        }
        let f = self.z[e];
        if f.abs() > 0.0 {
            for (c, v) in self.z.iter_mut().enumerate() {
                *v -= f * pivot_row[c];
            }
        }
        self.basis[r] = e;
    }

    /// Run simplex to optimality on the current z-row. `allow` filters the
    /// columns permitted to enter. Returns `None` on unboundedness.
    fn optimize(&mut self, allow: &dyn Fn(usize) -> bool, max_iters: u64) -> Option<bool> {
        for _ in 0..max_iters {
            // Bland: smallest-index column with negative reduced cost.
            let entering = (0..self.cols).find(|&c| allow(c) && self.z[c] < -TOL);
            let Some(e) = entering else {
                return Some(true); // optimal
            };
            if !self.pivot_column(e) {
                return None; // unbounded
            }
        }
        Some(false) // iteration cap
    }
}

/// Solve `p` to optimality.
pub fn solve(p: &Problem) -> Outcome {
    let n = p.n_vars();
    let m = p.n_rows();

    // Column layout: structural | slack/surplus | artificial.
    let mut extra = 0usize; // slack + surplus count
    let mut art = 0usize;
    for row in &p.rows {
        // After RHS normalization (flip when b < 0) the *effective* sense
        // decides the columns needed.
        let flipped = row.rhs < 0.0;
        let cmp = effective_cmp(row.cmp, flipped);
        match cmp {
            Cmp::Le => extra += 1,
            Cmp::Ge => {
                extra += 1;
                art += 1;
            }
            Cmp::Eq => art += 1,
        }
    }
    let cols = n + extra + art;
    let art_from = n + extra;

    let mut rows = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut next_extra = n;
    let mut next_art = art_from;

    for (r, row) in p.rows.iter().enumerate() {
        let flipped = row.rhs < 0.0;
        let sign = if flipped { -1.0 } else { 1.0 };
        for &(v, c) in &row.terms {
            rows[r][v.0] += sign * c;
        }
        rows[r][cols] = sign * row.rhs;
        match effective_cmp(row.cmp, flipped) {
            Cmp::Le => {
                rows[r][next_extra] = 1.0;
                basis[r] = next_extra;
                next_extra += 1;
            }
            Cmp::Ge => {
                rows[r][next_extra] = -1.0; // surplus
                next_extra += 1;
                rows[r][next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                rows[r][next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
        }
    }

    let max_iters = 200_000u64.max(64 * (m as u64 + cols as u64));
    let mut t = Tableau {
        rows,
        z: vec![0.0; cols + 1],
        basis,
        cols,
        art_from,
        pivots: 0,
    };

    // ---- Phase 1: minimize Σ artificials (maximize −Σ) -----------------
    if art > 0 {
        // z_j = Σ over rows with artificial basis of −row_j (so that basic
        // artificial columns read zero).
        for c in art_from..cols {
            t.z[c] = 1.0;
        }
        for r in 0..m {
            if t.basis[r] >= art_from {
                let row = t.rows[r].clone();
                for (c, v) in t.z.iter_mut().enumerate() {
                    *v -= row[c];
                }
            }
        }
        match t.optimize(&|_| true, max_iters) {
            None => unreachable!("phase 1 objective is bounded below by 0"),
            Some(false) => return Outcome::IterationLimit,
            Some(true) => {}
        }
        // Artificial sum = −z RHS (we maximized −Σ art). The threshold
        // scales with the problem's RHS magnitude so well-scaled and
        // badly-scaled inputs get comparable relative accuracy.
        let b_scale = p.rows.iter().map(|r| r.rhs.abs()).fold(1.0f64, f64::max);
        if -t.z[cols] > 1e-7 * b_scale.max(1.0) + 1e-7 {
            return Outcome::Infeasible;
        }
        // Drive basic artificials (at value 0) out where possible.
        for r in 0..m {
            if t.basis[r] >= art_from {
                if let Some(e) = (0..art_from).find(|&c| t.rows[r][c].abs() > TOL) {
                    t.do_pivot(r, e);
                }
                // else: redundant row; the artificial stays basic at 0 and
                // its column is barred from entering in phase 2.
            }
        }
    }

    // ---- Phase 2: maximize the real objective --------------------------
    t.z = vec![0.0; cols + 1];
    for (v, &c) in p.objective.iter().enumerate() {
        t.z[v] = -c;
    }
    for r in 0..m {
        let b = t.basis[r];
        let f = t.z[b];
        if f.abs() > 0.0 {
            let row = t.rows[r].clone();
            for (c, v) in t.z.iter_mut().enumerate() {
                *v -= f * row[c];
            }
        }
    }
    let art_from_copy = t.art_from;
    match t.optimize(&move |c| c < art_from_copy, max_iters) {
        None => return Outcome::Unbounded,
        Some(false) => return Outcome::IterationLimit,
        Some(true) => {}
    }

    // Extract.
    let mut x = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            x[t.basis[r]] = t.rhs(r).max(0.0);
        }
    }
    let objective = p.objective_at(&x);
    debug_assert!(
        p.is_feasible(&x, 1e-5),
        "simplex returned an infeasible point"
    );
    Outcome::Optimal(Solution {
        x,
        objective,
        pivots: t.pivots,
    })
}

/// The effective sense after multiplying a negative-RHS row by −1.
fn effective_cmp(cmp: Cmp, flipped: bool) -> Cmp {
    if !flipped {
        return cmp;
    }
    match cmp {
        Cmp::Le => Cmp::Ge,
        Cmp::Ge => Cmp::Le,
        Cmp::Eq => Cmp::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem};

    fn optimal(p: &Problem) -> Solution {
        match solve(p) {
            Outcome::Optimal(s) => s,
            other => panic!("expected Optimal, got {other:?}"),
        }
    }

    /// Dantzig's textbook example: max 3x+5y, x≤4, 2y≤12, 3x+2y≤18.
    #[test]
    fn textbook_optimum() {
        let mut p = Problem::new();
        let x = p.add_var(3.0);
        let y = p.add_var(5.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = optimal(&p);
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.x[0] - 2.0).abs() < 1e-6);
        assert!((s.x[1] - 6.0).abs() < 1e-6);
    }

    /// Equalities via artificials: max x s.t. x+y = 10, x ≤ 4.
    #[test]
    fn equality_constraints() {
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        let y = p.add_var(0.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        p.bound(x, 4.0);
        let s = optimal(&p);
        assert!((s.x[0] - 4.0).abs() < 1e-6);
        assert!((s.x[1] - 6.0).abs() < 1e-6);
    }

    /// ≥ constraints: min x+y s.t. x+2y ≥ 6, 2x+y ≥ 6 (classic diet-style).
    #[test]
    fn ge_constraints_minimization() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0); // minimize x+y
        let y = p.add_var(-1.0);
        p.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 6.0);
        p.add_constraint(vec![(x, 2.0), (y, 1.0)], Cmp::Ge, 6.0);
        let s = optimal(&p);
        // optimum at x=y=2, cost 4
        assert!((s.objective + 4.0).abs() < 1e-6);
        assert!((s.x[0] - 2.0).abs() < 1e-6);
        assert!((s.x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solve(&p), Outcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        let y = p.add_var(0.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        assert_eq!(solve(&p), Outcome::Unbounded);
    }

    /// Negative RHS rows are normalized correctly: x ≤ −1 is infeasible
    /// for x ≥ 0; x ≥ −1 is vacuous.
    #[test]
    fn negative_rhs_normalization() {
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, -1.0);
        assert_eq!(solve(&p), Outcome::Infeasible);

        let mut p = Problem::new();
        let x = p.add_var(-1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, -1.0);
        let s = optimal(&p);
        assert!((s.x[0] - 0.0).abs() < 1e-9, "min x with vacuous bound → 0");
    }

    /// Beale's classic cycling example — Bland's rule must terminate.
    #[test]
    fn beale_cycling_instance_terminates() {
        // max 0.75x1 − 150x2 + 0.02x3 − 6x4
        // s.t. 0.25x1 − 60x2 − 0.04x3 + 9x4 ≤ 0
        //      0.5x1  − 90x2 − 0.02x3 + 3x4 ≤ 0
        //      x3 ≤ 1
        let mut p = Problem::new();
        let x1 = p.add_var(0.75);
        let x2 = p.add_var(-150.0);
        let x3 = p.add_var(0.02);
        let x4 = p.add_var(-6.0);
        p.add_constraint(
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Cmp::Le,
            0.0,
        );
        p.bound(x3, 1.0);
        let s = optimal(&p);
        assert!((s.objective - 0.05).abs() < 1e-6, "obj {}", s.objective);
    }

    /// Degenerate problem with redundant equality rows.
    #[test]
    fn redundant_rows_are_harmless() {
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        let y = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        p.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Eq, 8.0); // same plane
        let s = optimal(&p);
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    /// Zero-variable / zero-constraint edge cases.
    #[test]
    fn trivial_problems() {
        let p = Problem::new();
        let s = optimal(&p);
        assert_eq!(s.objective, 0.0);

        let mut p = Problem::new();
        p.add_var(-5.0); // min 5x, x ≥ 0 free otherwise
        let s = optimal(&p);
        assert_eq!(s.x[0], 0.0);
    }
}
