//! # lpsolve — a dense two-phase simplex LP solver
//!
//! The paper's introduction motivates its CP formulation by a preliminary
//! comparison against a **linear programming** formulation (reference \[12\]:
//! "the superiority of the CP-based approach, including … lower processing
//! time overhead, and its ability to handle larger workloads"). To
//! reproduce that comparison without a proprietary LP package, this crate
//! provides a from-scratch primal simplex solver:
//!
//! * [`Problem`] — a builder for `maximize c·x` subject to sparse linear
//!   constraints (`≤`, `=`, `≥`) over nonnegative variables,
//! * two-phase solve (phase 1 drives artificial variables out to find a
//!   basic feasible solution; phase 2 optimizes the real objective),
//! * Bland's rule pivoting (guaranteed termination, no cycling),
//! * explicit [`Outcome`]s: optimal with certificate-checked primal
//!   feasibility, infeasible, or unbounded.
//!
//! It is a teaching-grade dense implementation — exactly the point: the
//! time-indexed LP scheduling formulation grows quadratically with batch
//! size and slot resolution, and watching simplex slow down on it while
//! the CP solver cruises reproduces the paper's motivating observation.
//! See `baselines::lp_sched` for the scheduling formulation built on top.

pub mod milp;
pub mod problem;
pub mod simplex;

pub use milp::{solve_milp, MilpOutcome, MilpProblem};
pub use problem::{Cmp, Problem, VarId};
pub use simplex::{solve, Outcome, Solution};
