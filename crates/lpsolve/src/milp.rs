//! Mixed-integer branch-and-bound over LP relaxations.
//!
//! The paper's preliminary-work LP comparison (\[12\]) needs *binary*
//! variables to express the late-job count (`N_j ∈ {0,1}`) — a plain LP
//! cannot. This module adds the minimal MILP machinery: depth-first
//! branch-and-bound where each node solves the LP relaxation with the
//! branching decisions added as bound rows, pruning on the relaxation
//! bound. Every node re-solves from scratch (no dual warm starts) — the
//! honest cost profile of the approach the CP formulation replaced.

use crate::problem::{Cmp, Problem, VarId};
use crate::simplex::{solve, Outcome as LpOutcome, Solution};

/// Integrality tolerance.
const INT_TOL: f64 = 1e-6;

/// A problem with binary (0/1) variables.
#[derive(Debug, Clone, Default)]
pub struct MilpProblem {
    /// The LP part (maximize).
    pub lp: Problem,
    /// Variables restricted to {0, 1}. (The builder adds the `≤ 1` rows.)
    pub binaries: Vec<VarId>,
}

impl MilpProblem {
    /// Wrap an LP and declare `binaries` as 0/1 variables.
    pub fn new(mut lp: Problem, binaries: Vec<VarId>) -> Self {
        for &b in &binaries {
            lp.bound(b, 1.0);
        }
        MilpProblem { lp, binaries }
    }
}

/// Result of a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpOutcome {
    /// Proven optimal integer solution.
    Optimal(Solution),
    /// Node budget hit with an incumbent in hand.
    Feasible(Solution),
    /// No integer-feasible point.
    Infeasible,
    /// Node budget hit with nothing found.
    Unknown,
}

/// Solve by DFS branch-and-bound, visiting at most `node_limit` nodes.
pub fn solve_milp(p: &MilpProblem, node_limit: u64) -> MilpOutcome {
    let mut best: Option<Solution> = None;
    let mut nodes = 0u64;
    let mut exhausted = true;

    // Each stack entry is a list of (var, fixed value) decisions.
    let mut stack: Vec<Vec<(VarId, f64)>> = vec![Vec::new()];
    while let Some(fixes) = stack.pop() {
        if nodes >= node_limit {
            exhausted = false;
            break;
        }
        nodes += 1;

        let mut lp = p.lp.clone();
        for &(v, val) in &fixes {
            // Fix via an equality row (keeps the solver interface simple).
            lp.add_constraint(vec![(v, 1.0)], Cmp::Eq, val);
        }
        let relax = match solve(&lp) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // A bounded-binary MILP with an unbounded relaxation cannot
                // be sensibly bounded — treat as no-information and stop.
                exhausted = false;
                break;
            }
            LpOutcome::IterationLimit => {
                exhausted = false;
                continue;
            }
        };
        // Prune on the relaxation bound.
        if let Some(b) = &best {
            if relax.objective <= b.objective + INT_TOL {
                continue;
            }
        }
        // Find a fractional binary.
        let frac = p
            .binaries
            .iter()
            .find(|v| {
                let x = relax.x[v.0];
                (x - x.round()).abs() > INT_TOL
            })
            .copied();
        match frac {
            None => {
                // Integer feasible: round the binaries exactly.
                let mut s = relax;
                for v in &p.binaries {
                    s.x[v.0] = s.x[v.0].round();
                }
                s.objective = p.lp.objective_at(&s.x);
                if best.as_ref().is_none_or(|b| s.objective > b.objective) {
                    best = Some(s);
                }
            }
            Some(v) => {
                // Branch: explore the rounded-up side first (often good for
                // maximization), push the other side.
                let mut up = fixes.clone();
                up.push((v, 1.0));
                let mut down = fixes;
                down.push((v, 0.0));
                stack.push(down);
                stack.push(up);
            }
        }
    }

    match (best, exhausted) {
        (Some(s), true) => MilpOutcome::Optimal(s),
        (Some(s), false) => MilpOutcome::Feasible(s),
        (None, true) => MilpOutcome::Infeasible,
        (None, false) => MilpOutcome::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0/1 knapsack via MILP, checked against exhaustive enumeration.
    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> (MilpOutcome, f64) {
        let mut lp = Problem::new();
        let vars: Vec<_> = values.iter().map(|&v| lp.add_var(v)).collect();
        let terms: Vec<_> = vars.iter().copied().zip(weights.iter().copied()).collect();
        lp.add_constraint(terms, Cmp::Le, cap);
        let p = MilpProblem::new(lp, vars);
        let out = solve_milp(&p, 100_000);
        // Brute force.
        let n = values.len();
        let mut brute = 0.0f64;
        for mask in 0..(1u32 << n) {
            let w: f64 = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| weights[i])
                .sum();
            if w <= cap + 1e-9 {
                let v: f64 = (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| values[i])
                    .sum();
                brute = brute.max(v);
            }
        }
        (out, brute)
    }

    #[test]
    fn knapsack_matches_brute_force() {
        let (out, brute) = knapsack(
            &[10.0, 13.0, 7.0, 8.0, 2.0],
            &[3.0, 4.0, 2.0, 3.0, 1.0],
            7.0,
        );
        let MilpOutcome::Optimal(s) = out else {
            panic!("expected optimal, got {out:?}")
        };
        assert!(
            (s.objective - brute).abs() < 1e-6,
            "{} vs {brute}",
            s.objective
        );
        // Every chosen variable is integral.
        for &x in &s.x {
            assert!((x - x.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn fractional_lp_relaxation_gets_tightened() {
        // value/weight identical → LP picks fractions; MILP must not.
        let (out, brute) = knapsack(&[5.0, 5.0, 5.0], &[2.0, 2.0, 2.0], 3.0);
        let MilpOutcome::Optimal(s) = out else {
            panic!()
        };
        assert!((s.objective - brute).abs() < 1e-6);
        assert!((s.objective - 5.0).abs() < 1e-6, "only one item fits");
    }

    #[test]
    fn infeasible_milp_detected() {
        let mut lp = Problem::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 0.4);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.6);
        let p = MilpProblem::new(lp, vec![x]);
        // x must be binary but is forced into (0.4, 0.6) → infeasible.
        assert_eq!(solve_milp(&p, 10_000), MilpOutcome::Infeasible);
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let mut lp = Problem::new();
        let vars: Vec<_> = (0..8).map(|_| lp.add_var(1.0)).collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(terms, Cmp::Le, 4.5);
        let p = MilpProblem::new(lp, vars);
        match solve_milp(&p, 1) {
            MilpOutcome::Feasible(_) | MilpOutcome::Unknown => {}
            other => panic!("tiny budget should not prove anything, got {other:?}"),
        }
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // max 3b + y  s.t. y ≤ 2.5, y ≤ 10·b, b binary.
        let mut lp = Problem::new();
        let b = lp.add_var(3.0);
        let y = lp.add_var(1.0);
        lp.bound(y, 2.5);
        lp.add_constraint(vec![(y, 1.0), (b, -10.0)], Cmp::Le, 0.0);
        let p = MilpProblem::new(lp, vec![b]);
        let MilpOutcome::Optimal(s) = solve_milp(&p, 10_000) else {
            panic!()
        };
        assert!((s.x[b.0] - 1.0).abs() < 1e-9);
        assert!((s.x[y.0] - 2.5).abs() < 1e-6);
        assert!((s.objective - 5.5).abs() < 1e-6);
    }
}
