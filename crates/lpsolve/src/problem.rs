//! LP problem construction.
//!
//! Variables are nonnegative reals; the objective is maximized. Minimize
//! by negating coefficients; bounded variables by adding a `≤` row.

/// Index of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// One sparse constraint row.
#[derive(Debug, Clone)]
pub struct Row {
    /// `(variable, coefficient)` terms; duplicates are summed.
    pub terms: Vec<(VarId, f64)>,
    /// Sense.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: `maximize c·x` s.t. rows, `x ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) objective: Vec<f64>,
    pub(crate) rows: Vec<Row>,
}

impl Problem {
    /// An empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with the given objective coefficient (to maximize).
    pub fn add_var(&mut self, objective: f64) -> VarId {
        assert!(
            objective.is_finite(),
            "objective coefficient must be finite"
        );
        let id = VarId(self.objective.len());
        self.objective.push(objective);
        id
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Add the constraint `Σ terms cmp rhs`.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        for &(v, c) in &terms {
            assert!(v.0 < self.n_vars(), "constraint references unknown {v:?}");
            assert!(c.is_finite(), "coefficient must be finite");
        }
        self.rows.push(Row { terms, cmp, rhs });
    }

    /// Convenience: `var ≤ bound`.
    pub fn bound(&mut self, var: VarId, upper: f64) {
        self.add_constraint(vec![(var, 1.0)], Cmp::Le, upper);
    }

    /// Evaluate the objective at `x`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Check primal feasibility of `x` within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n_vars() || x.iter().any(|&v| v < -tol || !v.is_finite()) {
            return false;
        }
        self.rows.iter().all(|row| {
            let lhs: f64 = row.terms.iter().map(|&(v, c)| c * x[v.0]).sum();
            match row.cmp {
                Cmp::Le => lhs <= row.rhs + tol,
                Cmp::Ge => lhs >= row.rhs - tol,
                Cmp::Eq => (lhs - row.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut p = Problem::new();
        let x = p.add_var(3.0);
        let y = p.add_var(5.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        assert_eq!(p.n_vars(), 2);
        assert_eq!(p.n_rows(), 3);
        assert_eq!(p.objective_at(&[2.0, 6.0]), 36.0);
        assert!(p.is_feasible(&[2.0, 6.0], 1e-9));
        assert!(!p.is_feasible(&[5.0, 0.0], 1e-9), "x ≤ 4 violated");
        assert!(!p.is_feasible(&[-1.0, 0.0], 1e-9), "x ≥ 0 violated");
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn constraint_on_unknown_var_panics() {
        let mut p = Problem::new();
        p.add_constraint(vec![(VarId(0), 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    fn bound_is_a_le_row() {
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        p.bound(x, 7.5);
        assert!(p.is_feasible(&[7.5], 1e-9));
        assert!(!p.is_feasible(&[7.6], 1e-9));
    }
}
