//! # mrcp-rm — CP-based resource management for MapReduce jobs with SLAs
//!
//! A from-scratch Rust reproduction of Lim, Majumdar & Ashwood-Smith,
//! *"A Constraint Programming-Based Resource Management Technique for
//! Processing MapReduce Jobs with SLAs on Clouds"* (ICPP 2014): the
//! MRCP-RM resource manager, the constraint-programming solver it runs on,
//! the MinEDF-WC comparator, the workload generators of the paper's
//! evaluation, and a discrete event simulation harness that regenerates
//! every figure.
//!
//! This umbrella crate re-exports the workspace members; see each crate
//! for its own documentation:
//!
//! * [`cpsolve`] — the CP solver (the CPLEX CP Optimizer replacement),
//! * [`desim`] — the discrete event simulation kernel,
//! * [`workload`] — job/task/resource model and workload generators,
//! * [`mrcp`] — the MRCP-RM resource manager (the paper's contribution),
//! * [`cluster`] — the multi-cell federation sharding the pool across
//!   several MRCP-RM instances (extension),
//! * [`service`] — the async ingest front door: batched arrival
//!   coalescing and closed-loop ramp harness ahead of any resource
//!   manager (extension),
//! * [`baselines`] — MinEDF-WC, MinEDF, EDF, FCFS, and the LP-based
//!   comparator of the paper's preliminary work,
//! * [`lpsolve`] — a from-scratch two-phase simplex LP solver,
//! * [`experiments`] — the figure-regeneration harness.
//!
//! ## Quick taste
//!
//! ```
//! use mrcp_rm::mrcp::{simulate, SimConfig};
//! use mrcp_rm::workload::model::homogeneous_cluster;
//! use mrcp_rm::workload::{SyntheticConfig, SyntheticGenerator};
//! use rand::SeedableRng;
//!
//! // 30 Table 3-style jobs (shrunk) on a 4-node cluster.
//! let cfg = SyntheticConfig {
//!     maps_per_job: (1, 6),
//!     reduces_per_job: (1, 3),
//!     e_max: 10,
//!     lambda: 0.05,
//!     resources: 4,
//!     ..Default::default()
//! };
//! let mut gen = SyntheticGenerator::new(cfg.clone(), rand::rngs::StdRng::seed_from_u64(7));
//! let jobs = gen.take_jobs(30);
//! let metrics = simulate(&SimConfig::default(), &cfg.cluster(), jobs);
//! assert_eq!(metrics.completed, 30);
//! ```

pub use baselines;
pub use cluster;
pub use cpsolve;
pub use desim;
pub use experiments;
pub use lpsolve;
pub use mrcp;
pub use service;
pub use workload;
