//! Workflow (DAG) scheduling — the paper's §VII future-work extension.
//!
//! Builds a small ETL-style pipeline as a single job with user-specified
//! precedence edges (ingest → clean → join → summarize) alongside ordinary
//! MapReduce jobs, and lets MRCP-RM schedule the mix. The installed
//! schedule is audited against the full CP model, so the printed plan is
//! guaranteed to respect every edge, the phase barrier, the SLA window and
//! all slot capacities.
//!
//! ```text
//! cargo run --release --example workflow_pipeline
//! ```

use desim::SimTime;
use mrcp::gantt;
use mrcp::{MrcpConfig, MrcpRm};
use workload::model::homogeneous_cluster;
use workload::workflow::WorkflowBuilder;
use workload::{Job, JobId, Task, TaskId, TaskKind};

fn plain_job(id: u32, base: u32, deadline_s: i64, maps: &[i64]) -> Job {
    let mut next = base;
    Job {
        id: JobId(id),
        arrival: SimTime::ZERO,
        earliest_start: SimTime::ZERO,
        deadline: SimTime::from_secs(deadline_s),
        map_tasks: maps
            .iter()
            .map(|&s| {
                let t = Task {
                    id: TaskId(next),
                    job: JobId(id),
                    kind: TaskKind::Map,
                    exec_time: SimTime::from_secs(s),
                    req: 1,
                };
                next += 1;
                t
            })
            .collect(),
        reduce_tasks: vec![],
        precedences: vec![],
    }
}

fn main() {
    // The pipeline: two independent ingest stages, a cleaning stage behind
    // the first, a join behind both branches, and a reduce summariser
    // (which the barrier already forces behind every map).
    let mut wf = WorkflowBuilder::new(
        JobId(0),
        0,
        SimTime::ZERO,
        SimTime::ZERO,
        SimTime::from_secs(120),
    );
    let ingest_a = wf.task(TaskKind::Map, SimTime::from_secs(20));
    let ingest_b = wf.task(TaskKind::Map, SimTime::from_secs(15));
    let clean = wf.task(TaskKind::Map, SimTime::from_secs(10));
    let join = wf.task(TaskKind::Map, SimTime::from_secs(12));
    wf.after(ingest_a, clean);
    wf.after(clean, join);
    wf.after(ingest_b, join);
    let summarize = wf.task(TaskKind::Reduce, SimTime::from_secs(8));
    let pipeline = wf.build().expect("valid workflow");

    println!("pipeline tasks:");
    println!("  {ingest_a} ingest-A (20s) ──► {clean} clean (10s) ──► {join} join (12s)");
    println!("  {ingest_b} ingest-B (15s) ─────────────────────────► {join}");
    println!("  {summarize} summarize (reduce, 8s) — after all maps (barrier)");
    println!("SLA: complete by t=120s\n");

    // Two ordinary jobs compete for the same 2-node cluster.
    let competing = vec![
        plain_job(1, 100, 90, &[25, 25]),
        plain_job(2, 200, 200, &[30]),
    ];

    let cluster = homogeneous_cluster(2, 1, 1);
    let mut rm = MrcpRm::new(
        MrcpConfig {
            verify_schedules: true,
            ..Default::default()
        },
        cluster,
    );
    rm.submit(pipeline, SimTime::ZERO).unwrap();
    for j in competing {
        rm.submit(j, SimTime::ZERO).unwrap();
    }
    let plan = rm.reschedule(SimTime::ZERO);

    println!("installed (audited) schedule:");
    for e in &plan {
        println!(
            "  t={:>4}  {}  task {:<4} on {}  (ends {})",
            e.start.to_string(),
            e.job,
            e.task.to_string(),
            e.resource,
            e.end
        );
    }

    // The same plan as a per-slot Gantt chart (digits = job ids).
    let kind_of: std::collections::HashMap<_, _> = plan
        .iter()
        .map(|e| {
            let k = if e.task == summarize {
                TaskKind::Reduce
            } else {
                TaskKind::Map
            };
            (e.task, k)
        })
        .collect();
    println!();
    print!(
        "{}",
        gantt::render(rm.resources(), &plan, &|t| kind_of[&t], 64)
            .expect("plan came from an audited round")
    );

    // Demonstrate the edges held.
    let start_of = |t: TaskId| plan.iter().find(|e| e.task == t).unwrap().start;
    let end_of = |t: TaskId| plan.iter().find(|e| e.task == t).unwrap().end;
    assert!(start_of(clean) >= end_of(ingest_a));
    assert!(start_of(join) >= end_of(clean));
    assert!(start_of(join) >= end_of(ingest_b));
    assert!(start_of(summarize) >= end_of(join));
    println!("\nall precedence edges respected ✔ (schedule verified against the CP model)");
}
