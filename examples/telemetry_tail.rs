//! Tail the telemetry event bus while a chaotic federation run is in
//! flight, then scrape the final Prometheus text from the HTTP sink.
//!
//! ```text
//! cargo run --release --example telemetry_tail
//! ```
//!
//! The run executes on a worker thread with a live [`Telemetry`] handle;
//! the main thread holds a filtered subscription (breaker transitions,
//! crashes, restores, and solver rounds) and drains it every few
//! milliseconds, printing events as they arrive. Telemetry is strictly
//! observational: the same run with the handle disabled produces a
//! bit-identical outcome.

use cluster::{
    simulate_cluster_chaos_telemetry, ChaosConfig, ChaosSimConfig, ClusterConfig, ClusterSimConfig,
    HealthConfig, RebalanceConfig, RetryPolicy,
};
use desim::{RngStreams, SimTime};
use mrcp::SimConfig;
use telemetry::{
    http_get, EventFilter, EventKind, SinkConfig, Telemetry, TelemetrySink, DEFAULT_QUEUE_CAP,
};
use workload::{CellCount, SyntheticConfig, SyntheticGenerator};

fn main() {
    let tel = Telemetry::new();
    // Only the kinds we care about; everything else skips the queue.
    let tail = tel.bus.subscribe(
        EventFilter {
            kinds: Some(vec![
                EventKind::CellCrash,
                EventKind::CellRestore,
                EventKind::BreakerTransition,
                EventKind::RoundSolved,
            ]),
            cell: None,
        },
        DEFAULT_QUEUE_CAP,
    );
    let sink =
        TelemetrySink::start(tel.registry.clone(), SinkConfig::loopback()).expect("bind sink");
    let addr = sink.local_addr().expect("http enabled");
    println!("scrape me: http://{addr}/metrics\n");

    let wl = SyntheticConfig {
        maps_per_job: (1, 4),
        reduces_per_job: (1, 2),
        e_max: 15,
        lambda: 1.0,
        resources: 8,
        map_capacity: 2,
        reduce_capacity: 2,
        s_max: 1,
        deadline_multiplier: 2.5,
        cells: CellCount(2),
        ..Default::default()
    };
    let resources = wl.cluster();
    let jobs =
        SyntheticGenerator::new(wl.clone(), RngStreams::new(42).stream("tail")).take_jobs(30);
    let cfg = ChaosSimConfig {
        base: ClusterSimConfig {
            sim: SimConfig::default(),
            cluster: ClusterConfig {
                cells: 2,
                rebalance: RebalanceConfig::default(),
            },
        },
        chaos: ChaosConfig {
            drop_prob: 0.1,
            dup_prob: 0.1,
            mean_latency: Some(SimTime::from_millis(10)),
            call_deadline: SimTime::from_millis(200),
            seed: 7,
            ..Default::default()
        },
        retry: RetryPolicy::default(),
        health: HealthConfig::default(),
    };

    let run_tel = tel.clone();
    let worker = std::thread::spawn(move || {
        simulate_cluster_chaos_telemetry(&cfg, &resources, jobs, &run_tel)
    });

    let mut tailed = 0u64;
    loop {
        let done = worker.is_finished();
        for e in tail.drain() {
            tailed += 1;
            let cell = e.cell.map_or(String::new(), |c| format!(" cell={c}"));
            let job = e.job.map_or(String::new(), |j| format!(" job={j}"));
            println!(
                "[{:>8} ms] {:<18}{cell}{job}  {}",
                e.at_ms,
                e.kind.as_str(),
                e.detail
            );
        }
        if done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let run = worker.join().expect("run thread");
    assert!(run.violations.is_empty(), "{:#?}", run.violations);

    let prom = http_get(addr, "/metrics").expect("final scrape");
    let rounds = prom
        .lines()
        .filter(|l| l.starts_with("mrcp_rounds_total"))
        .collect::<Vec<_>>()
        .join("\n");
    println!(
        "\n{tailed} events tailed, {} published, {} dropped",
        tel.bus.published(),
        tel.bus.dropped_events()
    );
    println!("final round counters:\n{rounds}");
    sink.shutdown();
}
