//! Quickstart: submit a handful of MapReduce jobs with SLAs to MRCP-RM and
//! watch it schedule them on a small cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use desim::SimTime;
use mrcp::{simulate, SimConfig};
use workload::model::homogeneous_cluster;
use workload::{Job, JobId, Task, TaskId, TaskKind};

/// Hand-build one MapReduce job with an SLA.
fn job(
    id: u32,
    arrival_s: i64,
    start_s: i64,
    deadline_s: i64,
    maps: &[i64],
    reduces: &[i64],
) -> Job {
    let mut next_task = id * 100;
    let mut mk = |kind, secs: i64| {
        let t = Task {
            id: TaskId(next_task),
            job: JobId(id),
            kind,
            exec_time: SimTime::from_secs(secs),
            req: 1,
        };
        next_task += 1;
        t
    };
    Job {
        id: JobId(id),
        arrival: SimTime::from_secs(arrival_s),
        earliest_start: SimTime::from_secs(start_s),
        deadline: SimTime::from_secs(deadline_s),
        map_tasks: maps.iter().map(|&s| mk(TaskKind::Map, s)).collect(),
        reduce_tasks: reduces.iter().map(|&s| mk(TaskKind::Reduce, s)).collect(),
        precedences: vec![],
    }
}

fn main() {
    // A 4-node cluster, 2 map + 2 reduce slots per node (Table 3's shape).
    let cluster = homogeneous_cluster(4, 2, 2);

    // Three jobs with different SLA pressure:
    //  - a relaxed ETL job,
    //  - an urgent ad-hoc query arriving later,
    //  - an advance-reservation (AR) job whose earliest start lies in the
    //    future — the SLA shape this paper adds over prior deadline work.
    let jobs = vec![
        job(0, 0, 0, 400, &[30, 30, 30, 30, 30, 30], &[40, 40]),
        job(1, 10, 10, 90, &[20, 20, 20], &[15]),
        job(2, 20, 120, 260, &[25, 25, 25, 25], &[30]),
    ];

    println!("cluster : 4 nodes × (2 map + 2 reduce slots)");
    for j in &jobs {
        println!(
            "submit  : {} arrives {}  s_j {}  d_j {}  ({} maps, {} reduces)",
            j.id,
            j.arrival,
            j.earliest_start,
            j.deadline,
            j.map_tasks.len(),
            j.reduce_tasks.len()
        );
    }

    // Run the open-system simulation: jobs arrive over time, MRCP-RM
    // builds and solves a CP model on each arrival, pinning running tasks.
    let metrics = simulate(&SimConfig::default(), &cluster, jobs);

    println!();
    println!("jobs completed      : {}", metrics.completed);
    println!("late jobs (N)       : {}", metrics.late);
    println!("proportion late (P) : {:.1}%", metrics.p_late * 100.0);
    println!("mean turnaround (T) : {:.1}s", metrics.mean_turnaround_s);
    println!(
        "scheduler overhead  : {:.3}ms per job (O)",
        metrics.o_per_job_s * 1e3
    );
    println!("scheduling rounds   : {}", metrics.invocations);

    assert_eq!(metrics.completed, 3, "all jobs must finish");
    assert_eq!(metrics.late, 0, "this little workload fits its SLAs");
    println!("\nall SLAs met ✔");
}
