//! Facebook-workload shoot-out: MRCP-RM vs MinEDF-WC vs EDF vs FCFS.
//!
//! Regenerates a single point of the paper's Figs. 2–3 comparison at
//! reduced scale: the synthetic October-2009 Facebook workload (Table 4
//! job mix, LogNormal task times) on a 64-node cluster with one map and
//! one reduce slot per node.
//!
//! ```text
//! cargo run --release --example facebook_trace [n_jobs] [task_scale]
//! ```

use baselines::{run_slot_sim, Edf, Fcfs, MinEdfWc};
use desim::RngStreams;
use mrcp::{simulate, SimConfig};
use workload::{FacebookConfig, FacebookGenerator};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_jobs: usize = args
        .next()
        .map(|s| s.parse().expect("n_jobs must be an integer"))
        .unwrap_or(150);
    let task_scale: f64 = args
        .next()
        .map(|s| s.parse().expect("task_scale must be a float"))
        .unwrap_or(0.05);

    // Paper setting: λ = 2e-4 jobs/s. When task counts are scaled down the
    // cluster shrinks by the same ratio, preserving per-slot utilization
    // and the bursty saturation episodes that differentiate the schedulers.
    let cfg = FacebookConfig {
        lambda: 2e-4,
        task_scale,
        resources: ((64.0 * task_scale).round() as u32).max(2),
        ..Default::default()
    };
    let cluster = cfg.cluster();

    println!(
        "Facebook workload: {n_jobs} jobs, task scale {task_scale}, λ={:.2e} jobs/s, {}×(1,1) cluster",
        cfg.lambda, cfg.resources
    );
    println!(
        "(Table 4 job mix; map times LN(9.9511,1.6764)ms, reduce times LN(12.375,1.6262)ms)\n"
    );

    let gen_jobs = || {
        let rng = RngStreams::new(2009).stream("facebook");
        FacebookGenerator::new(cfg.clone(), rng).take_jobs(n_jobs)
    };

    println!(
        "{:<11} {:>8} {:>8} {:>12} {:>14}",
        "scheduler", "late", "P", "T (s)", "O (ms/job)"
    );

    // MRCP-RM (CP-based, the paper's contribution).
    let m = simulate(&SimConfig::default(), &cluster, gen_jobs());
    println!(
        "{:<11} {:>8} {:>7.2}% {:>12.1} {:>14.3}",
        "MRCP-RM",
        m.late,
        m.p_late * 100.0,
        m.mean_turnaround_s,
        m.o_per_job_s * 1e3
    );

    // Baselines on the identical job stream (common random numbers).
    let shootout = |name: &str, m: baselines::BaselineMetrics| {
        println!(
            "{:<11} {:>8} {:>7.2}% {:>12.1} {:>14}",
            name,
            m.late,
            m.p_late * 100.0,
            m.mean_turnaround_s,
            "~0"
        );
    };
    let slots = (cfg.total_map_slots(), cfg.total_reduce_slots());
    shootout(
        "MinEDF-WC",
        run_slot_sim(slots.0, slots.1, gen_jobs(), &mut MinEdfWc::default(), 0),
    );
    shootout(
        "EDF",
        run_slot_sim(slots.0, slots.1, gen_jobs(), &mut Edf, 0),
    );
    shootout(
        "FCFS",
        run_slot_sim(slots.0, slots.1, gen_jobs(), &mut Fcfs, 0),
    );

    println!("\npaper's Fig. 2: MRCP-RM cuts the proportion of late jobs by 70–93% vs MinEDF-WC");
    println!("paper's Fig. 3: MRCP-RM's turnaround is up to 7% lower");
}
