//! Trace archive & replay: generate a workload, write it as a JSON trace,
//! reload it, and show that replaying the trace reproduces the original
//! simulation bit-for-bit — the provenance loop behind every artifact in
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example trace_replay [n_jobs]
//! ```
//!
//! The same traces can be produced from the command line with the `mrgen`
//! binary (`cargo run -p workload --bin mrgen -- table3 --jobs 50`).

use desim::RngStreams;
use mrcp::{simulate, SimConfig};
use workload::trace::Trace;
use workload::{SyntheticConfig, SyntheticGenerator};

fn main() {
    let n_jobs: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n_jobs must be an integer"))
        .unwrap_or(60);

    let cfg = SyntheticConfig {
        maps_per_job: (1, 10),
        reduces_per_job: (1, 5),
        e_max: 20,
        resources: 5,
        lambda: 0.02,
        ..Default::default()
    };
    let rng = RngStreams::new(404).stream("trace-demo");
    let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n_jobs);

    // Archive.
    let trace = Trace::new(
        format!("table3-shrunk seed=404 jobs={n_jobs}"),
        cfg.cluster(),
        jobs,
    );
    trace.validate().expect("trace is valid");
    let path = std::env::temp_dir().join("mrcp_trace_demo.json");
    std::fs::write(&path, trace.to_json()).expect("write trace");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "archived {} jobs ({} tasks) to {} ({bytes} bytes)",
        trace.jobs.len(),
        trace.jobs.iter().map(|j| j.task_count()).sum::<usize>(),
        path.display()
    );

    // Replay from disk.
    let loaded = Trace::from_json(&std::fs::read_to_string(&path).expect("read trace"))
        .expect("parse trace");
    assert_eq!(loaded, trace, "round trip is lossless");

    let original = simulate(&SimConfig::default(), &trace.resources, trace.jobs.clone());
    let replayed = simulate(
        &SimConfig::default(),
        &loaded.resources,
        loaded.jobs.clone(),
    );

    println!(
        "\n{:<12} {:>10} {:>8} {:>12} {:>12}",
        "run", "completed", "late", "T (s)", "p95 T (s)"
    );
    for (name, m) in [("original", original), ("replayed", replayed)] {
        println!(
            "{name:<12} {:>10} {:>8} {:>12.2} {:>12.2}",
            m.completed, m.late, m.mean_turnaround_s, m.p95_turnaround_s
        );
    }
    assert_eq!(original.late, replayed.late);
    assert_eq!(original.mean_turnaround_s, replayed.mean_turnaround_s);
    assert_eq!(original.p95_turnaround_s, replayed.p95_turnaround_s);
    println!("\nreplay matches the original exactly ✔");
}
