//! SLA deadline tuning: how tight can customers' deadlines be before the
//! cluster starts missing them?
//!
//! Sweeps the deadline multiplier `d_M` (the paper's Fig. 7 factor) over an
//! open stream of Table 3-style jobs and reports the proportion of late
//! jobs and the scheduler overhead at each tightness level, plus the same
//! under the three job-ordering strategies of §VI.B.
//!
//! ```text
//! cargo run --release --example deadline_tuning [n_jobs]
//! ```

use desim::RngStreams;
use mrcp::{simulate, JobOrdering, SimConfig};
use workload::{SyntheticConfig, SyntheticGenerator};

fn run(cfg: &SyntheticConfig, n_jobs: usize, ordering: JobOrdering, seed: u64) -> (f64, f64, f64) {
    let rng = RngStreams::new(seed).stream("workload");
    let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n_jobs);
    let mut sim = SimConfig::default();
    sim.manager.ordering = ordering;
    let m = simulate(&sim, &cfg.cluster(), jobs);
    (m.p_late, m.mean_turnaround_s, m.o_per_job_s)
}

fn main() {
    let n_jobs: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n_jobs must be an integer"))
        .unwrap_or(120);

    // 6 nodes with the Table 3 job shape shrunk 5× → reduce slots at ~70%
    // utilization, where deadline tightness really bites.
    let base = SyntheticConfig {
        maps_per_job: (1, 20),
        reduces_per_job: (1, 10),
        e_max: 50,
        resources: 6,
        ..Default::default()
    };

    println!("== deadline tightness sweep (EDF ordering, {n_jobs} jobs/point) ==");
    println!(
        "{:>6} {:>9} {:>10} {:>12}",
        "d_M", "P", "T (s)", "O (ms/job)"
    );
    for d_m in [1.5, 2.0, 3.0, 5.0, 10.0] {
        let cfg = SyntheticConfig {
            deadline_multiplier: d_m,
            ..base.clone()
        };
        let (p, t, o) = run(&cfg, n_jobs, JobOrdering::Edf, 5);
        println!("{d_m:>6} {:>8.2}% {:>10.1} {:>12.3}", p * 100.0, t, o * 1e3);
    }
    println!("\npaper's Fig. 7: P falls 3.46% → 0.56% → 0.21% as d_M goes 2 → 5 → 10,");
    println!("and the scheduler works hardest (highest O) when laxity is scarce.\n");

    println!("== job ordering strategies at d_M = 2 (paper §VI.B) ==");
    println!(
        "{:>14} {:>9} {:>10} {:>12}",
        "ordering", "P", "T (s)", "O (ms/job)"
    );
    let tight = SyntheticConfig {
        deadline_multiplier: 2.0,
        ..base
    };
    for ordering in JobOrdering::all() {
        let (p, t, o) = run(&tight, n_jobs, ordering, 5);
        println!(
            "{:>14} {:>8.2}% {:>10.1} {:>12.3}",
            ordering.name(),
            p * 100.0,
            t,
            o * 1e3
        );
    }
    println!("\npaper: EDF produced the smallest P, but no strategy differed significantly.");
}
