//! Capacity planning with the closed-system batch solver.
//!
//! Given a nightly batch of SLA-bearing MapReduce jobs, how many nodes does
//! the cluster need before every deadline is met? This sweeps the cluster
//! size and reports late-job counts from one CP solve per size — the
//! closed-system mode of the authors' preliminary work, applied to the
//! paper's Fig. 9 question (effect of the number of resources).
//!
//! ```text
//! cargo run --release --example capacity_planning [n_jobs]
//! ```

use cpsolve::search::SolveParams;
use desim::RngStreams;
use mrcp::closed::solve_closed;
use mrcp::JobOrdering;
use workload::{SyntheticConfig, SyntheticGenerator};

fn main() {
    let n_jobs: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n_jobs must be an integer"))
        .unwrap_or(25);

    // A batch of moderately tight jobs (Table 3 shape, shrunk, deadline
    // multiplier 2 → little slack). All jobs are available at t=0.
    let base = SyntheticConfig {
        maps_per_job: (1, 12),
        reduces_per_job: (1, 6),
        e_max: 30,
        deadline_multiplier: 2.0,
        p_future_start: 0.0,
        lambda: 1000.0, // batch: arrivals effectively simultaneous
        resources: 8,   // overwritten by the sweep
        map_capacity: 2,
        reduce_capacity: 2,
        ..Default::default()
    };

    println!("batch of {n_jobs} jobs, sweeping cluster size m (2 map + 2 reduce slots per node)\n");
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>10}",
        "m", "late jobs", "P", "status", "nodes"
    );

    let mut first_zero = None;
    for m in [2u32, 4, 6, 8, 12, 16, 24] {
        let cfg = SyntheticConfig {
            resources: m,
            ..base.clone()
        };
        // Same batch for every cluster size: common random numbers make the
        // sweep monotone instead of noisy.
        let rng = RngStreams::new(77).stream("batch");
        let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n_jobs);
        let out = solve_closed(
            &cfg.cluster(),
            &jobs,
            JobOrdering::Edf,
            &SolveParams {
                node_limit: 50_000,
                time_limit: Some(std::time::Duration::from_millis(500)),
                ..Default::default()
            },
            true,
        )
        .expect("batch solve");
        println!(
            "{m:>4} {:>10} {:>11.1}% {:>12} {:>10}",
            out.objective,
            out.objective as f64 / n_jobs as f64 * 100.0,
            format!("{:?}", out.outcome.status),
            out.outcome.stats.nodes,
        );
        if out.objective == 0 && first_zero.is_none() {
            first_zero = Some(m);
        }
    }

    match first_zero {
        Some(m) => println!("\n→ the batch meets every SLA from m = {m} nodes upward"),
        None => println!("\n→ even the largest swept cluster misses deadlines; widen the sweep"),
    }
    println!("(paper's Fig. 9: P and T increase as m shrinks — the same effect, answered as a planning question)");
}
