//! Minimal offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`RngCore`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng`],
//! [`rngs::StdRng`] (xoshiro256** here — high statistical quality, not
//! cryptographic, which matches how the workspace uses it), and
//! [`seq::SliceRandom`]. Stream identity guarantees are the same as the
//! real crate's: the same seed always reproduces the same stream within
//! this codebase, but streams are not bit-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait SampleValue: Sized {
    /// Draw one uniformly distributed value.
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for u64 {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl SampleValue for u32 {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl SampleValue for u8 {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl SampleValue for u16 {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl SampleValue for usize {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl SampleValue for i64 {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl SampleValue for i32 {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl SampleValue for bool {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl SampleValue for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl SampleValue for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without meaningful modulo bias for the
/// spans this workspace uses (all far below 2^64).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    (rng.next_u64() as u128) % span
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as SampleValue>::sample_value(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as SampleValue>::sample_value(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T`.
    fn gen<T: SampleValue>(&mut self) -> T {
        T::sample_value(self)
    }

    /// A uniformly distributed value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from fixed state.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Standard generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** (Blackman & Vigna).
    /// Excellent statistical quality and a 256-bit state; not
    /// cryptographically secure, exactly like the real `StdRng`'s contract
    /// of "no reproducibility guarantee across versions".
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // The all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(-3i64..=9);
            assert!((-3..=9).contains(&x));
            let y = r.gen_range(5u32..8);
            assert!((5..8).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_endpoints_are_reached() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to stay sorted");
        assert!([1u32, 2, 3].choose(&mut r).is_some());
        assert!(([] as [u32; 0]).choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
