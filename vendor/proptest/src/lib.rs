//! Minimal offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`strategy::Just`], [`prop_oneof!`], `any::<T>()`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, acceptable for this workspace's tests:
//! cases are generated from a deterministic per-test seed (derived from the
//! fully-qualified test name and case index), and failing cases are **not
//! shrunk** — but because generation is deterministic, any failure
//! reproduces exactly on re-run.

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-case random source (xoshiro256**, seeded from the test name and
    /// case index so every run of the suite explores the same cases).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// The RNG for one `(test, case)` pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut seed = splitmix(h ^ splitmix(case as u64 + 1));
            let mut s = [0u64; 4];
            for slot in &mut s {
                seed = splitmix(seed);
                *slot = seed;
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, span)`.
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Marker for a rejected assumption (`prop_assume!`).
    #[derive(Debug)]
    pub struct CaseRejected;

    /// Error type for fallible test helpers (`fn -> Result<(), TestCaseError>`).
    ///
    /// In this subset `prop_assert!` panics directly, so the only value that
    /// flows through `?` in practice is a rejection.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected (assumption failed).
        Reject(String),
        /// The case failed.
        Fail(String),
    }

    impl From<TestCaseError> for CaseRejected {
        fn from(e: TestCaseError) -> Self {
            match e {
                TestCaseError::Reject(_) => CaseRejected,
                TestCaseError::Fail(msg) => panic!("test case failed: {msg}"),
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe sampling, for [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_sample(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.dyn_sample(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between type-erased alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u128) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K, 11 L)
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec<T>` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a proptest-based test file needs in scope.

    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Alias so `prop::collection::vec(...)` resolves as in real proptest.
    pub use crate as prop;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::prelude::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let __strategy = ($($strat,)+);
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                    // The closure gives `prop_assume!` an early exit that
                    // skips just this case.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::test_runner::CaseRejected> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    let _ = __outcome;
                }
            }
        )*
    };
}

/// Assert within a property test (plain `assert!` + deterministic replay).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::CaseRejected);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges, vec, tuples and maps compose.
        #[test]
        fn generated_values_respect_bounds(
            x in 1i64..=10,
            v in prop::collection::vec(0u32..5, 2..=4),
            pair in (0usize..3, any::<bool>()).prop_map(|(a, b)| (a * 2, b)),
        ) {
            prop_assert!((1..=10).contains(&x));
            prop_assert!((2..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(pair.0 <= 4 && pair.0 % 2 == 0);
        }

        /// prop_assume skips cases without failing.
        #[test]
        fn assume_skips(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        /// oneof and flat_map produce valid values.
        #[test]
        fn oneof_and_flat_map(
            v in prop_oneof![Just(1i64), 5i64..=9, (2i64..4).prop_map(|x| x * 10)],
            w in (1usize..4).prop_flat_map(|n| prop::collection::vec(0i64..10, n..=n)),
        ) {
            prop_assert!(v == 1 || (5..=9).contains(&v) || v == 20 || v == 30);
            prop_assert!(!w.is_empty() && w.len() < 4);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0i64..1000, crate::collection::vec(0u32..100, 1..=5));
        let a: Vec<_> = (0..10)
            .map(|c| strat.sample(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| strat.sample(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "different cases must differ");
    }
}
