//! Minimal offline JSON front-end for the vendored serde subset: renders
//! and parses the [`serde::Value`] tree. Covers the workspace's needs —
//! [`to_string`], [`to_string_pretty`], [`from_str`] — with exact `f64`
//! round-tripping (Rust's `{:?}` shortest-representation formatting).

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::deserialize_value(&v).map_err(Error)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null"); // JSON has no Inf/NaN
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |o, i| {
            write_value(o, &items[i], indent, depth + 1)
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |o, i| {
                write_string(o, &entries[i].0);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, &entries[i].1, indent, depth + 1)
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error(format!(
                "unexpected character '{}' at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a \"quoted\"\nline".into())),
            ("count".into(), Value::Int(-3)),
            ("ratio".into(), Value::Float(0.1 + 0.2)),
            (
                "flags".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        for render in [
            to_string(&Wrapper(v.clone())),
            to_string_pretty(&Wrapper(v.clone())),
        ] {
            let s = render.unwrap();
            let back: Wrapper = from_str(&s).unwrap();
            assert_eq!(back.0, v);
        }
    }

    /// Serialize/Deserialize adapter so tests can round-trip raw values.
    #[derive(Debug, PartialEq)]
    struct Wrapper(Value);
    impl serde::Serialize for Wrapper {
        fn serialize_value(&self) -> Value {
            self.0.clone()
        }
    }
    impl serde::Deserialize for Wrapper {
        fn deserialize_value(v: &Value) -> Result<Self, String> {
            Ok(Wrapper(v.clone()))
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.5, 1.0, 1e300, -2.2250738585072014e-308, 0.1] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<f64>("{not json").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    #[test]
    fn ints_parse_as_ints() {
        let v: i64 = from_str("-42").unwrap();
        assert_eq!(v, -42);
        let u: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(u, u64::MAX);
    }
}
