//! Minimal offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors just enough of criterion for its benches to compile and run:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`criterion_group!`] and [`criterion_main!`]. Timing is a simple
//! mean-over-samples measurement printed to stdout — adequate for the
//! relative comparisons the benches are used for, without the real crate's
//! statistical machinery (outlier analysis, HTML reports).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one benchmark body.
pub struct Bencher {
    iters: u64,
    /// Mean wall time per iteration from the measurement phase.
    mean: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record its mean wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the measured batch.
        std::hint::black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.mean = t0.elapsed() / self.iters.max(1) as u32;
    }
}

/// Identifies one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the stub has no warm-up phase beyond
    /// one priming call.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; measurement length is `sample_size`
    /// iterations.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; the stub takes no CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.sample_size, name, f);
        self
    }

    /// Printed by [`criterion_main!`] after all groups run.
    pub fn final_summary(&self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(sample_size: usize, label: &str, mut f: F) {
    let mut b = Bencher {
        iters: sample_size as u64,
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!("bench: {label:<50} {:>12.3?}/iter", b.mean);
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(self.criterion.sample_size, &label, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(self.criterion.sample_size, &label, |b| f(b, input));
        self
    }

    /// Accepted for compatibility; sets nothing in the stub.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group-runner function over benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench `main` over group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        for n in [1u64, 2] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
