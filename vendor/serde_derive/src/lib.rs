//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde subset — no `syn`/`quote` (the build environment cannot
//! fetch them), just direct `proc_macro::TokenStream` walking.
//!
//! Supported shapes, which cover every derive site in this workspace:
//!
//! * named-field structs (honouring `#[serde(default)]` and
//!   `#[serde(skip)]` on fields),
//! * tuple structs — single-field ones (with or without
//!   `#[serde(transparent)]`) delegate to the inner value, as real serde
//!   does for newtypes; wider ones serialize as a sequence,
//! * enums with unit variants only, serialized as the variant name.
//!
//! Generics are intentionally unsupported (no derive site needs them) and
//! rejected with a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

/// The parsed derive target.
enum Target {
    Named { name: String, fields: Vec<Field> },
    Tuple { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let target = parse(input);
    gen_serialize(&target)
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = parse(input);
    gen_deserialize(&target)
        .parse()
        .expect("generated impl parses")
}

/// Does an attribute token sequence `# [ ... ]` carry `serde(<word>)`?
fn attr_has(group: &TokenStream, word: &str) -> bool {
    let mut it = group.clone().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(w) if w.to_string() == word))
        }
        _ => false,
    }
}

fn parse(input: TokenStream) -> Target {
    let mut it = input.into_iter().peekable();
    let mut transparent = false;

    // Outer attributes and visibility before the struct/enum keyword.
    let keyword = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = it.next() {
                    transparent |= attr_has(&g.stream(), "transparent");
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub` or `pub(crate)` — the group after pub is consumed by
                // the next iteration as it's a Group token we ignore below.
            }
            Some(TokenTree::Group(_)) => {} // the `(crate)` of `pub(crate)`
            Some(other) => panic!("unexpected token before item keyword: {other}"),
            None => panic!("no struct/enum found in derive input"),
        }
    };

    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };

    if matches!(&it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) on generic type {name} is unsupported");
    }

    if keyword == "enum" {
        let body = match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("expected enum body, got {other:?}"),
        };
        let mut variants = Vec::new();
        let mut inner = body.stream().into_iter().peekable();
        while let Some(tok) = inner.next() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    inner.next(); // the attribute group
                }
                TokenTree::Ident(id) => {
                    if let Some(TokenTree::Group(_)) = inner.peek() {
                        panic!("enum {name}: data-carrying variants are unsupported");
                    }
                    variants.push(id.to_string());
                }
                TokenTree::Punct(p) if p.as_char() == ',' => {}
                other => panic!("enum {name}: unexpected token {other}"),
            }
        }
        return Target::UnitEnum { name, variants };
    }

    match it.next() {
        // Tuple struct: `struct X(...);`
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let mut arity = 0usize;
            let mut saw_tokens = false;
            for tok in g.stream() {
                match tok {
                    TokenTree::Punct(ref p) if p.as_char() == ',' => {
                        arity += 1;
                        saw_tokens = false;
                    }
                    _ => saw_tokens = true,
                }
            }
            if saw_tokens {
                arity += 1;
            }
            let _ = transparent; // single-field tuples delegate either way
            Target::Tuple { name, arity }
        }
        // Named struct: `struct X { ... }`
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let mut fields = Vec::new();
            let mut inner = g.stream().into_iter().peekable();
            loop {
                let mut skip = false;
                let mut default = false;
                // Field attributes + visibility.
                let field_name = loop {
                    match inner.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                            if let Some(TokenTree::Group(a)) = inner.next() {
                                skip |= attr_has(&a.stream(), "skip");
                                default |= attr_has(&a.stream(), "default");
                            }
                        }
                        Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                            if matches!(inner.peek(), Some(TokenTree::Group(_))) {
                                inner.next(); // `(crate)`
                            }
                        }
                        Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                        Some(other) => panic!("struct {name}: unexpected token {other}"),
                        None => break None,
                    }
                };
                let Some(field_name) = field_name else { break };
                match inner.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("struct {name}: expected ':', got {other:?}"),
                }
                // Skip the type: consume until a comma at angle-depth 0.
                let mut angle_depth = 0i32;
                loop {
                    match inner.peek() {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                            angle_depth += 1;
                            inner.next();
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                            angle_depth -= 1;
                            inner.next();
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                            inner.next();
                            break;
                        }
                        Some(_) => {
                            inner.next();
                        }
                    }
                }
                fields.push(Field {
                    name: field_name,
                    skip,
                    default,
                });
            }
            Target::Named { name, fields }
        }
        other => panic!("struct {name}: unsupported body {other:?}"),
    }
}

fn gen_serialize(t: &Target) -> String {
    match t {
        Target::Named { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__m.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::serialize_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(__m)\n}}\n}}"
            )
        }
        Target::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::serialize_value(&self.0)\n}}\n}}"
        ),
        Target::Tuple { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Seq(vec![{}])\n}}\n}}",
                elems.join(", ")
            )
        }
        Target::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 match *self {{ {} }}\n}}\n}}",
                arms.join(", ")
            )
        }
    }
}

fn gen_deserialize(t: &Target) -> String {
    match t {
        Target::Named { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{0}: match ::serde::__get(__m, \"{0}\") {{\n\
                         Some(__x) => ::serde::Deserialize::deserialize_value(__x)?,\n\
                         None => ::std::default::Default::default(),\n}},\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: match ::serde::__get(__m, \"{0}\") {{\n\
                         Some(__x) => ::serde::Deserialize::deserialize_value(__x)?,\n\
                         None => return ::std::result::Result::Err(\
                         ::std::string::String::from(\"missing field {0} in {name}\")),\n}},\n",
                        f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::std::string::String> {{\n\
                 let __m = __v.as_map().ok_or_else(|| \
                 ::std::string::String::from(\"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}"
            )
        }
        Target::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::Value) -> \
             ::std::result::Result<Self, ::std::string::String> {{\n\
             ::std::result::Result::Ok({name}(\
             ::serde::Deserialize::deserialize_value(__v)?))\n}}\n}}"
        ),
        Target::Tuple { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__s[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::std::string::String> {{\n\
                 let __s = __v.as_seq().ok_or_else(|| \
                 ::std::string::String::from(\"expected sequence for {name}\"))?;\n\
                 if __s.len() != {arity} {{ return ::std::result::Result::Err(\
                 format!(\"expected {arity} elements for {name}, got {{}}\", __s.len())); }}\n\
                 ::std::result::Result::Ok({name}({}))\n}}\n}}",
                elems.join(", ")
            )
        }
        Target::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::std::string::String> {{\n\
                 match __v.as_str() {{\n{},\n\
                 __other => ::std::result::Result::Err(\
                 format!(\"unknown {name} variant {{__other:?}}\")),\n}}\n}}\n}}",
                arms.join(",\n")
            )
        }
    }
}
