//! Minimal offline drop-in subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of serde it uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs/enums (honouring `#[serde(transparent)]`,
//! `#[serde(default)]` and `#[serde(skip)]`), routed through a simple
//! self-describing [`Value`] tree instead of the real crate's
//! serializer/deserializer visitors. `serde_json` (also vendored) renders
//! and parses that tree as JSON.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the intermediate form between Rust values
/// and a concrete format like JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / absent.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (for values above `i64::MAX`).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key→value map (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric view, widening integers into `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// A signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// An unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Field lookup helper used by derive-generated code.
#[doc(hidden)]
pub fn __get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, String>;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, String> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| format!("expected integer, got {v:?}"))?;
                <$t>::try_from(i).map_err(|_| {
                    format!("integer {i} out of range for {}", stringify!($t))
                })
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, String> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| format!("expected unsigned integer, got {v:?}"))?;
                <$t>::try_from(u).map_err(|_| {
                    format!("integer {u} out of range for {}", stringify!($t))
                })
            }
        }
    )*};
}
uint_impls!(u64, usize);

// Identity impls: a hand-built `Value` tree serializes as itself, so code
// can assemble ad-hoc JSON documents without a dedicated struct.
impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, String> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| format!("expected number, got {v:?}"))
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        v.as_bool()
            .ok_or_else(|| format!("expected bool, got {v:?}"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        v.as_seq()
            .ok_or_else(|| format!("expected sequence, got {v:?}"))?
            .iter()
            .map(Deserialize::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, String> {
                let s = v
                    .as_seq()
                    .ok_or_else(|| format!("expected tuple sequence, got {v:?}"))?;
                let expect = [$($n),+].len();
                if s.len() != expect {
                    return Err(format!("expected {expect}-tuple, got {} elements", s.len()));
                }
                Ok(($($t::deserialize_value(&s[$n])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(i64::deserialize_value(&42i64.serialize_value()), Ok(42));
        assert_eq!(u32::deserialize_value(&7u32.serialize_value()), Ok(7));
        assert_eq!(f64::deserialize_value(&1.5f64.serialize_value()), Ok(1.5));
        assert_eq!(bool::deserialize_value(&true.serialize_value()), Ok(true));
        assert_eq!(
            String::deserialize_value(&String::from("hi").serialize_value()),
            Ok(String::from("hi"))
        );
        assert_eq!(
            Vec::<i64>::deserialize_value(&vec![1i64, 2].serialize_value()),
            Ok(vec![1, 2])
        );
        assert_eq!(
            <(i64, f64)>::deserialize_value(&(3i64, 0.5f64).serialize_value()),
            Ok((3, 0.5))
        );
        assert_eq!(Option::<i64>::deserialize_value(&Value::Null), Ok(None));
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::deserialize_value(&Value::Int(300)).is_err());
        assert!(u64::deserialize_value(&Value::Int(-1)).is_err());
        assert!(i64::deserialize_value(&Value::Str("x".into())).is_err());
    }
}
