#![allow(clippy::field_reassign_with_default)]
//! Cross-crate integration tests: the full open-system pipeline
//! (generator → MRCP-RM → CP solver → simulator → metrics) and its
//! agreement with the baselines on common inputs.

use baselines::slot_sim::run_slot_sim_detailed;
use baselines::{run_slot_sim, Edf, Fcfs, MinEdf, MinEdfWc};
use desim::RngStreams;
use mrcp::sim_driver::simulate_detailed;
use mrcp::{simulate, MrcpConfig, SimConfig};
use workload::{FacebookConfig, FacebookGenerator, SyntheticConfig, SyntheticGenerator};

fn synth_cfg() -> SyntheticConfig {
    SyntheticConfig {
        maps_per_job: (1, 8),
        reduces_per_job: (1, 4),
        e_max: 20,
        resources: 4,
        lambda: 0.02,
        ..Default::default()
    }
}

fn synth_jobs(cfg: &SyntheticConfig, n: usize, seed: u64) -> Vec<workload::Job> {
    let rng = RngStreams::new(seed).stream("it");
    SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n)
}

/// The open-system pipeline drains and its metrics are internally
/// consistent.
#[test]
fn pipeline_metrics_are_consistent() {
    let cfg = synth_cfg();
    let jobs = synth_jobs(&cfg, 60, 1);
    let (m, outcomes) = simulate_detailed(&SimConfig::default(), &cfg.cluster(), jobs);
    assert_eq!(m.arrived, 60);
    assert_eq!(m.completed, 60);
    assert_eq!(outcomes.len(), 60);
    // N equals the count of late outcomes; P = N / measured.
    let late = outcomes.iter().filter(|o| o.late).count();
    assert_eq!(m.late, late);
    assert!((m.p_late - late as f64 / 60.0).abs() < 1e-12);
    // Completions never precede earliest starts; late flags match deadlines.
    for o in &outcomes {
        assert!(o.completion >= o.earliest_start);
        assert_eq!(o.late, o.completion > o.deadline);
    }
    // Completion order is nondecreasing in time.
    for w in outcomes.windows(2) {
        assert!(w[1].completion >= w[0].completion);
    }
}

/// Every job completes under every scheduler on the same workload.
#[test]
fn all_schedulers_drain_common_workload() {
    let cfg = FacebookConfig {
        lambda: 3e-4,
        task_scale: 0.02,
        resources: 2,
        ..Default::default()
    };
    let rng = RngStreams::new(5).stream("it");
    let jobs = FacebookGenerator::new(cfg.clone(), rng).take_jobs(60);

    let m = simulate(&SimConfig::default(), &cfg.cluster(), jobs.clone());
    assert_eq!(m.completed, 60, "MRCP-RM drains");

    let slots = (cfg.total_map_slots(), cfg.total_reduce_slots());
    let b1 = run_slot_sim(slots.0, slots.1, jobs.clone(), &mut MinEdfWc::default(), 0);
    let b2 = run_slot_sim(slots.0, slots.1, jobs.clone(), &mut MinEdf::default(), 0);
    let b3 = run_slot_sim(slots.0, slots.1, jobs.clone(), &mut Edf, 0);
    let b4 = run_slot_sim(slots.0, slots.1, jobs, &mut Fcfs, 0);
    for (name, b) in [("minedf-wc", b1), ("minedf", b2), ("edf", b3), ("fcfs", b4)] {
        assert_eq!(b.completed, 60, "{name} drains");
    }
}

/// MRCP-RM beats (or at worst ties) MinEDF-WC on the Fig. 2 configuration
/// — the paper's headline claim, checked end to end over several seeds.
#[test]
fn mrcp_beats_minedf_wc_on_fig2_setup() {
    let cfg = FacebookConfig {
        lambda: 3e-4,
        task_scale: 0.05,
        resources: 3,
        ..Default::default()
    };
    let mut mrcp_total = 0usize;
    let mut base_total = 0usize;
    for rep in 0..3u64 {
        let rng = RngStreams::for_replication(99, rep).stream("it");
        let jobs = FacebookGenerator::new(cfg.clone(), rng).take_jobs(120);
        let (m, _) = simulate_detailed(&SimConfig::default(), &cfg.cluster(), jobs.clone());
        let (b, _) = run_slot_sim_detailed(
            cfg.total_map_slots(),
            cfg.total_reduce_slots(),
            jobs,
            &mut MinEdfWc::default(),
            0,
        );
        mrcp_total += m.late;
        base_total += b.late;
    }
    assert!(
        mrcp_total <= base_total,
        "MRCP-RM late {mrcp_total} should not exceed MinEDF-WC late {base_total}"
    );
}

/// Deferral (§V.E) changes scheduling effort but not job completion: the
/// same jobs finish either way.
#[test]
fn deferral_preserves_completions() {
    let cfg = SyntheticConfig {
        p_future_start: 0.8,
        s_max: 2_000,
        ..synth_cfg()
    };
    let jobs = synth_jobs(&cfg, 40, 2);

    let on = simulate(&SimConfig::default(), &cfg.cluster(), jobs.clone());
    let mut sim_off = SimConfig::default();
    sim_off.manager.defer = mrcp::defer::DeferPolicy::disabled();
    let off = simulate(&sim_off, &cfg.cluster(), jobs);
    assert_eq!(on.completed, 40);
    assert_eq!(off.completed, 40);
    // Deferral reduces (or keeps equal) the model sizes per round.
    assert!(on.max_tasks_in_model <= off.max_tasks_in_model);
}

/// The split optimization (§V.D) and the monolithic model agree that the
/// workload drains, and late counts stay close (split is lossless on
/// homogeneous clusters; small divergence can come from search order).
#[test]
fn split_and_monolithic_agree() {
    let cfg = synth_cfg();
    let jobs = synth_jobs(&cfg, 40, 3);

    let split = simulate(&SimConfig::default(), &cfg.cluster(), jobs.clone());
    let mut sim_full = SimConfig::default();
    sim_full.manager.use_split = false;
    let full = simulate(&sim_full, &cfg.cluster(), jobs);
    assert_eq!(split.completed, 40);
    assert_eq!(full.completed, 40);
    let diff = (split.late as i64 - full.late as i64).abs();
    assert!(
        diff <= 3,
        "split late {} vs full late {}",
        split.late,
        full.late
    );
}

/// Schedules installed by the manager are audited by the independent
/// verifier when `verify_schedules` is on (here: forced on in release too).
#[test]
fn verified_schedules_run_clean() {
    let cfg = synth_cfg();
    let jobs = synth_jobs(&cfg, 30, 4);
    let mut sim = SimConfig::default();
    sim.manager = MrcpConfig {
        verify_schedules: true,
        ..Default::default()
    };
    let m = simulate(&sim, &cfg.cluster(), jobs);
    assert_eq!(m.completed, 30);
}

/// Determinism across the whole pipeline: identical inputs → identical
/// simulated outcomes (wall-clock overhead excluded).
#[test]
fn pipeline_is_deterministic() {
    let cfg = synth_cfg();
    let jobs = synth_jobs(&cfg, 50, 6);
    let (a, ao) = simulate_detailed(&SimConfig::default(), &cfg.cluster(), jobs.clone());
    let (b, bo) = simulate_detailed(&SimConfig::default(), &cfg.cluster(), jobs);
    assert_eq!(ao, bo, "per-job outcomes must match exactly");
    assert_eq!(a.late, b.late);
    assert_eq!(a.invocations, b.invocations);
    assert_eq!(a.mean_turnaround_s, b.mean_turnaround_s);
}
