//! Cross-crate integration: the closed-system solvers (CP, fluid LP, MILP)
//! agree on what they should agree on, and disagree exactly where theory
//! says they must.

use baselines::lp_sched::{lp_schedule_closed, milp_schedule_closed};
use cpsolve::search::SolveParams;
use desim::{RngStreams, SimTime};
use mrcp::closed::solve_closed;
use mrcp::JobOrdering;
use workload::{Job, SyntheticConfig, SyntheticGenerator};

fn batch(n: usize, seed: u64, d_m: f64) -> (SyntheticConfig, Vec<Job>) {
    let cfg = SyntheticConfig {
        maps_per_job: (1, 6),
        reduces_per_job: (1, 3),
        e_max: 15,
        resources: 3,
        deadline_multiplier: d_m,
        p_future_start: 0.0,
        lambda: 5.0, // near-simultaneous arrivals: a true batch
        ..Default::default()
    };
    let rng = RngStreams::new(seed).stream("closed-it");
    let jobs = SyntheticGenerator::new(cfg.clone(), rng).take_jobs(n);
    (cfg, jobs)
}

/// The fluid LP is neither an upper nor a lower bound on the CP's late
/// count — it relaxes capacity/barrier structure (optimistic) while its
/// slot grid rounds completions up (pessimistic); which effect wins is
/// instance-specific. What must hold: both produce internally consistent
/// answers over the same jobs, and refining the LP's grid never *adds*
/// grid-induced lateness.
#[test]
fn fluid_lp_is_internally_consistent() {
    for seed in [1u64, 2] {
        let (cfg, jobs) = batch(8, seed, 1.5);
        let cp = solve_closed(
            &cfg.cluster(),
            &jobs,
            JobOrdering::Edf,
            &SolveParams {
                node_limit: 20_000,
                fail_limit: 20_000,
                ..Default::default()
            },
            true,
        )
        .unwrap();
        assert_eq!(cp.late_jobs.len() as u32, cp.objective);

        let coarse =
            lp_schedule_closed(cfg.total_map_slots(), cfg.total_reduce_slots(), &jobs, 16).unwrap();
        let fine =
            lp_schedule_closed(cfg.total_map_slots(), cfg.total_reduce_slots(), &jobs, 40).unwrap();
        for lp in [&coarse, &fine] {
            assert_eq!(lp.completions.len(), jobs.len());
            for j in &jobs {
                let c = lp.completions[&j.id];
                assert!(c >= j.earliest_start, "completion before release");
                assert_eq!(lp.late_jobs.contains(&j.id), c > j.deadline);
            }
        }
        // A finer grid has (weakly) fewer grid-rounding casualties.
        assert!(
            fine.late_jobs.len() <= coarse.late_jobs.len(),
            "seed {seed}: refining the grid must not add lateness ({} → {})",
            coarse.late_jobs.len(),
            fine.late_jobs.len()
        );
    }
}

/// On loose deadlines every solver finds zero late jobs.
#[test]
fn all_solvers_agree_on_loose_batches() {
    // Deadlines loose enough that even the LP/MILP slot grid (horizon/20 ≈
    // 9 s granularity here) cannot round anyone past a deadline.
    let (cfg, jobs) = batch(6, 7, 40.0);
    let cp = solve_closed(
        &cfg.cluster(),
        &jobs,
        JobOrdering::Edf,
        &SolveParams::default(),
        true,
    )
    .unwrap();
    assert_eq!(cp.objective, 0, "CP meets loose deadlines");
    let lp =
        lp_schedule_closed(cfg.total_map_slots(), cfg.total_reduce_slots(), &jobs, 30).unwrap();
    assert!(lp.late_jobs.is_empty(), "fluid LP meets loose deadlines");
    let milp = milp_schedule_closed(
        cfg.total_map_slots(),
        cfg.total_reduce_slots(),
        &jobs,
        20,
        10_000,
    )
    .unwrap();
    assert_eq!(milp.late, 0, "MILP meets loose deadlines");
    assert!(milp.proven_optimal);
}

/// A job that cannot meet its deadline even alone is late for everyone.
#[test]
fn hopeless_job_is_late_for_every_solver() {
    let (cfg, mut jobs) = batch(4, 11, 6.0);
    // Make job 0 hopeless: deadline before its earliest possible end.
    jobs[0].deadline = jobs[0].earliest_start + SimTime::from_secs(1);
    let cp = solve_closed(
        &cfg.cluster(),
        &jobs,
        JobOrdering::Edf,
        &SolveParams::default(),
        true,
    )
    .unwrap();
    assert!(cp.late_jobs.contains(&jobs[0].id));
    let lp =
        lp_schedule_closed(cfg.total_map_slots(), cfg.total_reduce_slots(), &jobs, 30).unwrap();
    assert!(lp.late_jobs.contains(&jobs[0].id));
    let milp = milp_schedule_closed(
        cfg.total_map_slots(),
        cfg.total_reduce_slots(),
        &jobs,
        20,
        10_000,
    )
    .unwrap();
    assert!(milp.late >= 1);
}
