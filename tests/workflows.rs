//! Integration tests for the workflow (DAG) extension — the paper's §VII
//! future work — across the full stack: builder → manager → CP solver →
//! simulator.

use desim::{RngStreams, SimTime};
use mrcp::sim_driver::simulate_detailed;
use mrcp::{MrcpConfig, MrcpRm, SimConfig};
use workload::model::homogeneous_cluster;
use workload::workflow::{random_workflow, WorkflowBuilder};
use workload::{Job, JobId, TaskId, TaskKind};

fn chain_job(id: u32, base: u32, lens: &[i64], deadline_s: i64) -> (Job, Vec<TaskId>) {
    let mut b = WorkflowBuilder::new(
        JobId(id),
        base,
        SimTime::ZERO,
        SimTime::ZERO,
        SimTime::from_secs(deadline_s),
    );
    let mut ids = Vec::new();
    let mut prev: Option<TaskId> = None;
    for &l in lens {
        let t = b.task(TaskKind::Map, SimTime::from_secs(l));
        if let Some(p) = prev {
            b.after(p, t);
        }
        prev = Some(t);
        ids.push(t);
    }
    (b.build().unwrap(), ids)
}

/// A pure chain serializes even on a wide cluster.
#[test]
fn chain_workflow_serializes() {
    let (job, ids) = chain_job(0, 0, &[5, 7, 3], 100);
    let cluster = homogeneous_cluster(4, 2, 2);
    let mut rm = MrcpRm::new(
        MrcpConfig {
            verify_schedules: true,
            ..Default::default()
        },
        cluster,
    );
    rm.submit(job, SimTime::ZERO).unwrap();
    let plan = rm.reschedule(SimTime::ZERO);
    let start = |t: TaskId| plan.iter().find(|e| e.task == t).unwrap().start;
    let end = |t: TaskId| plan.iter().find(|e| e.task == t).unwrap().end;
    assert!(start(ids[1]) >= end(ids[0]));
    assert!(start(ids[2]) >= end(ids[1]));
    // The chain is tight: 5 + 7 + 3 = 15s total.
    assert_eq!(end(ids[2]), SimTime::from_secs(15));
}

/// Incremental rescheduling keeps DAG edges intact around pinned tasks: a
/// new job arriving mid-chain must not let later chain stages jump their
/// still-running predecessor.
#[test]
fn incremental_reschedule_respects_dag() {
    let (job, ids) = chain_job(0, 0, &[10, 5], 100);
    let cluster = homogeneous_cluster(1, 1, 1);
    let mut rm = MrcpRm::new(
        MrcpConfig {
            verify_schedules: true,
            ..Default::default()
        },
        cluster,
    );
    rm.submit(job, SimTime::ZERO).unwrap();
    let plan = rm.reschedule(SimTime::ZERO);
    let first = *plan.iter().find(|e| e.task == ids[0]).unwrap();
    rm.task_started(first.task, first.start).unwrap();

    // Urgent job arrives at t=2 while the chain head runs.
    let (urgent, _) = chain_job(1, 100, &[3], 20);
    rm.submit(urgent, SimTime::from_secs(2)).unwrap();
    let plan = rm.reschedule(SimTime::from_secs(2));
    let succ = plan.iter().find(|e| e.task == ids[1]).unwrap();
    assert!(
        succ.start >= SimTime::from_secs(10),
        "chain successor must wait for the running head (got {})",
        succ.start
    );
}

/// Random layered DAGs simulate end-to-end: the whole mix drains and the
/// audited schedules never violate an edge (the audit panics otherwise).
#[test]
fn random_dag_mix_drains() {
    let mut rng = RngStreams::new(17).stream("wf");
    let mut jobs: Vec<Job> = Vec::new();
    for i in 0..10u32 {
        let mut j = random_workflow(
            &mut rng,
            JobId(i),
            i * 1000,
            SimTime::from_secs(i as i64 * 20),
            3.0,
            3,
            3,
            8,
        );
        // arrivals must be the generator's arrival; keep as built.
        j.arrival = SimTime::from_secs(i as i64 * 20);
        j.earliest_start = j.arrival;
        jobs.push(j);
    }
    let cluster = homogeneous_cluster(2, 2, 2);
    let mut sim = SimConfig::default();
    sim.manager.verify_schedules = true;
    let (m, outcomes) = simulate_detailed(&sim, &cluster, jobs);
    assert_eq!(m.completed, 10);
    for o in &outcomes {
        assert_eq!(o.late, o.completion > o.deadline);
    }
}

/// Workflows and plain MapReduce jobs coexist in one scheduling round.
#[test]
fn mixed_workflow_and_mapreduce() {
    let (wf, _) = chain_job(0, 0, &[4, 4, 4], 60);
    let mut plain = chain_job(1, 100, &[6], 30).0;
    plain.precedences.clear();
    let cluster = homogeneous_cluster(2, 1, 1);
    let mut sim = SimConfig::default();
    sim.manager.verify_schedules = true;
    let (m, _) = simulate_detailed(&sim, &cluster, vec![wf, plain]);
    assert_eq!(m.completed, 2);
    assert_eq!(m.late, 0, "both fit their SLAs");
}
